#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/obs/json.h"

namespace radical {
namespace obs {

namespace {

// FNV-1a over the instrument name: a deterministic per-instrument seed for
// the reservoir RNG, independent of registration order.
uint64_t NameSeed(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

LatencyHistogram::LatencyHistogram(size_t reservoir_capacity, uint64_t seed)
    : capacity_(reservoir_capacity == 0 ? 1 : reservoir_capacity), rng_(seed) {
  reservoir_.reserve(capacity_);
}

void LatencyHistogram::Record(SimDuration sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(sample);
    sorted_valid_ = false;
    return;
  }
  // Algorithm R: the j-th sample replaces a random slot with probability
  // capacity/j, keeping the reservoir a uniform sample of everything seen.
  const uint64_t j = rng_.NextBelow(count_);
  if (j < capacity_) {
    reservoir_[static_cast<size_t>(j)] = sample;
    sorted_valid_ = false;
  }
}

double LatencyHistogram::MeanMs() const {
  if (count_ == 0) {
    return 0.0;
  }
  return ToMillis(sum_) / static_cast<double>(count_);
}

const std::vector<SimDuration>& LatencyHistogram::Sorted() const {
  if (!sorted_valid_) {
    sorted_ = reservoir_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double LatencyHistogram::PercentileMs(double pct) const {
  const std::vector<SimDuration>& s = Sorted();
  if (s.empty()) {
    return 0.0;
  }
  if (s.size() == 1) {
    return ToMillis(s[0]);
  }
  pct = std::min(100.0, std::max(0.0, pct));
  const double pos = pct / 100.0 * static_cast<double>(s.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return ToMillis(s[lo]) * (1.0 - frac) + ToMillis(s[hi]) * frac;
}

Summary LatencyHistogram::Summarize() const {
  Summary out;
  out.count = count_;
  if (count_ == 0) {
    return out;
  }
  out.mean_ms = MeanMs();
  out.min_ms = ToMillis(min_);
  out.max_ms = ToMillis(max_);
  out.p50_ms = PercentileMs(50.0);
  out.p90_ms = PercentileMs(90.0);
  out.p99_ms = PercentileMs(99.0);
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                size_t reservoir_capacity) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::make_unique<LatencyHistogram>(reservoir_capacity, NameSeed(name)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::AddCallbackGauge(const std::string& name, std::function<int64_t()> read) {
  callback_gauges_[name] = std::move(read);
}

std::string MetricsRegistry::UniqueScopeName(const std::string& base) {
  const int n = ++scope_counts_[base];
  if (n == 1) {
    return base;
  }
  return base + "#" + std::to_string(n);
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  const auto g = gauges_.find(name);
  if (g != gauges_.end()) {
    return g->second->value();
  }
  const auto cb = callback_gauges_.find(name);
  return cb == callback_gauges_.end() ? 0 : cb->second();
}

std::map<std::string, uint64_t> MetricsRegistry::CountersWithPrefix(
    const std::string& prefix) const {
  std::map<std::string, uint64_t> out;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.emplace(it->first.substr(prefix.size()), it->second->value());
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name);
    w.Uint(counter->value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  {
    // Owned and callback gauges share the namespace; merge name-ordered.
    std::map<std::string, int64_t> merged;
    for (const auto& [name, gauge] : gauges_) {
      merged[name] = gauge->value();
    }
    for (const auto& [name, read] : callback_gauges_) {
      merged[name] = read();
    }
    for (const auto& [name, value] : merged) {
      w.Key(name);
      w.Int(value);
    }
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, hist] : histograms_) {
    const Summary s = hist->Summarize();
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Uint(s.count);
    w.Key("sum_ms");
    w.Double(ToMillis(hist->sum()), 3);
    w.Key("mean_ms");
    w.Double(s.mean_ms, 3);
    w.Key("min_ms");
    w.Double(s.min_ms, 3);
    w.Key("p50_ms");
    w.Double(s.p50_ms, 3);
    w.Key("p90_ms");
    w.Double(s.p90_ms, 3);
    w.Key("p99_ms");
    w.Double(s.p99_ms, 3);
    w.Key("max_ms");
    w.Double(s.max_ms, 3);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricsRegistry::SnapshotText() const {
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " " << counter->value() << "\n";
  }
  std::map<std::string, int64_t> merged;
  for (const auto& [name, gauge] : gauges_) {
    merged[name] = gauge->value();
  }
  for (const auto& [name, read] : callback_gauges_) {
    merged[name] = read();
  }
  for (const auto& [name, value] : merged) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << name << " " << hist->Summarize().ToString() << "\n";
  }
  return os.str();
}

namespace {

// Percentile over a pre-sorted sample vector with the same linear
// interpolation as LatencyHistogram::PercentileMs, so a single-shard merge is
// numerically identical to that shard's own SnapshotJson.
double SortedPercentileMs(const std::vector<SimDuration>& s, double pct) {
  if (s.empty()) {
    return 0.0;
  }
  if (s.size() == 1) {
    return ToMillis(s[0]);
  }
  pct = std::min(100.0, std::max(0.0, pct));
  const double pos = pct / 100.0 * static_cast<double>(s.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return ToMillis(s[lo]) * (1.0 - frac) + ToMillis(s[hi]) * frac;
}

}  // namespace

std::string MergedSnapshotJson(const std::vector<const MetricsRegistry*>& shards) {
  // Union every shard's instruments by name; std::map keeps the export
  // name-ordered like SnapshotJson. All inputs are deterministic per shard,
  // and the merge folds in shard order, so the output is a pure function of
  // the shard contents.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  struct MergedHistogram {
    uint64_t count = 0;
    SimDuration sum = 0;
    SimDuration min = 0;
    SimDuration max = 0;
    std::vector<SimDuration> samples;  // shards' reservoirs, concatenated
  };
  std::map<std::string, MergedHistogram> histograms;

  for (const MetricsRegistry* shard : shards) {
    for (const auto& [name, counter] : shard->counters_) {
      counters[name] += counter->value();
    }
    for (const auto& [name, gauge] : shard->gauges_) {
      gauges[name] += gauge->value();
    }
    for (const auto& [name, read] : shard->callback_gauges_) {
      gauges[name] += read();
    }
    for (const auto& [name, hist] : shard->histograms_) {
      MergedHistogram& m = histograms[name];
      if (hist->count() > 0) {
        if (m.count == 0) {
          m.min = hist->min();
          m.max = hist->max();
        } else {
          m.min = std::min(m.min, hist->min());
          m.max = std::max(m.max, hist->max());
        }
      }
      m.count += hist->count();
      m.sum += hist->sum();
      const std::vector<SimDuration>& r = hist->reservoir();
      m.samples.insert(m.samples.end(), r.begin(), r.end());
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name);
    w.Uint(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : gauges) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (auto& [name, m] : histograms) {
    std::sort(m.samples.begin(), m.samples.end());
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Uint(m.count);
    w.Key("sum_ms");
    w.Double(ToMillis(m.sum), 3);
    w.Key("mean_ms");
    w.Double(m.count == 0 ? 0.0 : ToMillis(m.sum) / static_cast<double>(m.count), 3);
    w.Key("min_ms");
    w.Double(ToMillis(m.min), 3);
    w.Key("p50_ms");
    w.Double(SortedPercentileMs(m.samples, 50.0), 3);
    w.Key("p90_ms");
    w.Double(SortedPercentileMs(m.samples, 90.0), 3);
    w.Key("p99_ms");
    w.Double(SortedPercentileMs(m.samples, 99.0), 3);
    w.Key("max_ms");
    w.Double(ToMillis(m.max), 3);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

MetricsScope::MetricsScope(MetricsRegistry* registry, std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {}

void MetricsScope::Increment(const std::string& name, uint64_t by) {
  if (registry_ != nullptr) {
    registry_->GetCounter(Qualified(name))->Increment(by);
  }
}

uint64_t MetricsScope::Get(const std::string& name) const {
  return registry_ == nullptr ? 0 : registry_->CounterValue(Qualified(name));
}

double MetricsScope::RatioOf(const std::string& num, const std::string& denom) const {
  const double n = static_cast<double>(Get(num));
  const double d = static_cast<double>(Get(denom));
  if (n + d == 0.0) {
    return 0.0;
  }
  return n / (n + d);
}

std::map<std::string, uint64_t> MetricsScope::all() const {
  if (registry_ == nullptr) {
    return {};
  }
  return registry_->CountersWithPrefix(prefix_ + ".");
}

Counter* MetricsScope::counter(const std::string& name) const {
  return registry_ == nullptr ? nullptr : registry_->GetCounter(Qualified(name));
}

Gauge* MetricsScope::gauge(const std::string& name) const {
  return registry_ == nullptr ? nullptr : registry_->GetGauge(Qualified(name));
}

LatencyHistogram* MetricsScope::histogram(const std::string& name,
                                          size_t reservoir_capacity) const {
  return registry_ == nullptr ? nullptr
                              : registry_->GetHistogram(Qualified(name), reservoir_capacity);
}

void MetricsScope::AddCallbackGauge(const std::string& name, std::function<int64_t()> read) const {
  if (registry_ != nullptr) {
    registry_->AddCallbackGauge(Qualified(name), std::move(read));
  }
}

}  // namespace obs
}  // namespace radical
