// Per-request span traces, exportable as Chrome trace-event JSON.
//
// Each protocol leg of a request — instantiation, f^rw, speculation, every
// LVI/direct/followup attempt, the server's lock/validate/intent/backup
// substeps — is recorded as one complete Span. A SpanCollector accumulates
// spans and serializes them in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// which Perfetto (https://ui.perfetto.dev) and chrome://tracing open
// directly. Virtual time is microseconds, which is exactly the trace-event
// `ts`/`dur` unit — no conversion.
//
// Track mapping: `pid` is a small integer per component ("process") and
// `tid` is the execution id, so Perfetto shows one row per request with its
// legs laid end to end, client-side and server-side legs on separate
// processes.

#ifndef RADICAL_SRC_OBS_SPAN_H_
#define RADICAL_SRC_OBS_SPAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace radical {
namespace obs {

// Component ("process") a span belongs to; becomes the trace-event pid and
// its metadata process_name.
enum class SpanTrack : int {
  kClient = 1,   // Near-user runtime legs.
  kServer = 2,   // Near-storage (LVI server) legs.
  kNetwork = 3,  // Fabric-level legs (reserved).
};

struct Span {
  std::string name;      // e.g. "lvi.attempt#2"
  std::string category;  // e.g. "runtime", "lvi_server"
  SpanTrack track = SpanTrack::kClient;
  uint64_t lane = 0;  // tid: execution id (one row per request).
  SimTime start = 0;
  SimDuration duration = 0;
  // Key/value annotations, serialized as the event's args in given order.
  std::vector<std::pair<std::string, std::string>> args;
};

class SpanCollector {
 public:
  void Add(Span span) { spans_.push_back(std::move(span)); }

  const std::vector<Span>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }
  void Clear() { spans_.clear(); }

  // Complete ("ph":"X") events in insertion order, preceded by process-name
  // metadata, wrapped in {"traceEvents": [...]}.
  std::string ToChromeTraceJson() const;

  // Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace obs
}  // namespace radical

#endif  // RADICAL_SRC_OBS_SPAN_H_
