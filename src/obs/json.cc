#include "src/obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace radical {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value, int digits) {
  if (!std::isfinite(value)) {
    value = 0.0;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": was just emitted; the value follows directly.
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) {
      out_ += ',';
    }
    has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!has_value_.empty());
  has_value_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!has_value_.empty());
  has_value_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  assert(!pending_key_);
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value, int digits) {
  BeforeValue();
  out_ += JsonNumber(value, digits);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(const std::string& fragment) {
  BeforeValue();
  out_ += fragment;
}

}  // namespace obs
}  // namespace radical
