// Latency statistics collection and summarization.
//
// Every experiment in the paper reports medians and p99s of end-to-end
// latency (Figures 4-6) plus derived quantities (improvement over baseline,
// fraction of the maximum possible improvement). LatencySampler collects raw
// samples; Summary computes the order statistics; Histogram provides a
// fixed-bucket view for distribution-shape assertions in tests.

#ifndef RADICAL_SRC_COMMON_STATS_H_
#define RADICAL_SRC_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace radical {

// Order statistics over a set of duration samples.
struct Summary {
  size_t count = 0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  std::string ToString() const;
};

// Accumulates duration samples (virtual-time microseconds).
class LatencySampler {
 public:
  void Add(SimDuration sample);
  void Merge(const LatencySampler& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Percentile in [0, 100]; interpolates between adjacent order statistics.
  // Returns 0.0 on an empty sampler (like MeanMs).
  double PercentileMs(double pct) const;
  double MedianMs() const { return PercentileMs(50.0); }
  double MeanMs() const;

  Summary Summarize() const;

  const std::vector<SimDuration>& samples() const { return samples_; }

 private:
  // Sorts samples_ if new samples arrived since the last query.
  void EnsureSorted() const;

  mutable std::vector<SimDuration> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width histogram over milliseconds, used by tests to assert on
// distribution shape (e.g. bimodality of the validation-failure path).
class Histogram {
 public:
  Histogram(double bucket_width_ms, double max_ms);

  void Add(SimDuration sample);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t BucketCount(size_t bucket) const { return counts_[bucket]; }
  uint64_t total() const { return total_; }
  // Bucket that the given millisecond value falls into.
  size_t BucketFor(double ms) const;
  // Fraction of samples in [lo_ms, hi_ms).
  double FractionBetween(double lo_ms, double hi_ms) const;

  std::string ToString() const;

 private:
  double bucket_width_ms_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Simple named-counter registry used for protocol statistics (validation
// successes/failures, re-executions, lock waits, ...).
class Counters {
 public:
  void Increment(const std::string& name, uint64_t by = 1);
  uint64_t Get(const std::string& name) const;
  // Ratio numerator/(numerator+denominator); 0 if both are zero.
  double RatioOf(const std::string& num, const std::string& denom) const;
  const std::map<std::string, uint64_t>& all() const { return counters_; }
  void Clear() { counters_.clear(); }

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_STATS_H_
