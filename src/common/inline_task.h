// InlineTask: a move-only callable with fixed inline capture storage.
//
// std::function heap-allocates once a closure outgrows its (small,
// implementation-defined) inline buffer — and the simulator schedules one
// closure per event and one per delivered envelope, so that allocation was
// the hot path's dominant cost. InlineTask replaces it on those paths with a
// small-buffer-only design: the capture is constructed directly into a
// fixed-size inline buffer, a closure too large for the buffer is a
// *compile-time* error (static_assert, never a silent fallback to the heap),
// and dispatch is one indirect call through a per-type ops table.
//
// The capacity is a deliberate budget. Closures on the schedule/deliver
// paths capture a handful of pointers, ids, and occasionally a moved
// protocol message; kInlineTaskCapacity is sized for the largest of those
// (see docs/sim.md). If a new call site trips the static_assert, first try
// to shrink the capture (capture a pointer or move a member out) before
// reaching for the capacity knob.

#ifndef RADICAL_SRC_COMMON_INLINE_TASK_H_
#define RADICAL_SRC_COMMON_INLINE_TASK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace radical {

// Capture budget in bytes. 192 holds: a shared_ptr request state (16), a
// moved LviResponse/DirectResponse (~112 with its vectors), a std::function
// respond callback (32), and change — the largest closure the runtime or
// LVI server schedules today.
inline constexpr size_t kInlineTaskCapacity = 192;

class InlineTask {
 public:
  InlineTask() = default;

  // Implicit, so every existing `sim->Schedule(d, [..]{...})` call site
  // keeps compiling unchanged.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineTask(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineTaskCapacity,
                  "closure capture exceeds kInlineTaskCapacity: shrink the "
                  "capture (see src/common/inline_task.h)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closure capture");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::kOps;
  }

  InlineTask(InlineTask&& other) noexcept { MoveFrom(std::move(other)); }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Constructs a callable directly into the inline storage, replacing any
  // current one — the zero-move path used by the event queue's node slab.
  // Passing an InlineTask (e.g. a closure forwarded out of an Envelope)
  // moves it instead of wrapping a task inside a task.
  template <typename F>
  void Emplace(F&& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineTask>) {
      *this = std::forward<F>(f);
    } else {
      using Fn = std::decay_t<F>;
      static_assert(sizeof(Fn) <= kInlineTaskCapacity,
                    "closure capture exceeds kInlineTaskCapacity: shrink the "
                    "capture (see src/common/inline_task.h)");
      static_assert(alignof(Fn) <= alignof(std::max_align_t),
                    "over-aligned closure capture");
      Reset();
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &OpsFor<Fn>::kOps;
    }
  }

  // Invokes the stored callable (which must be present). The callable stays
  // stored afterwards; the owner destroys it by dropping the task.
  void operator()() { ops_->invoke(storage_); }

  // Invokes the stored callable (which must be present) and destroys it,
  // leaving the task empty — one indirect call instead of invoke + destroy.
  // This is the event-dispatch hot path: every fired event pays exactly one
  // dispatch through the ops table.
  void InvokeAndReset() {
    const Ops* ops = ops_;
    // Read as empty while the callback runs (a probe from inside it sees
    // "nothing stored"). The storage itself stays live until the call
    // returns — the callback must not Emplace into its own task; owners
    // that recycle storage (the event queue's slab) wait for the return.
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  // Destroys the stored callable, leaving the task empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*invoke_destroy)(void* storage);  // Invoke, then destroy.
    void (*move_construct)(void* dst, void* src);  // src is destroyed.
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  struct OpsFor {
    static void Invoke(void* storage) { (*static_cast<Fn*>(storage))(); }
    static void InvokeDestroy(void* storage) {
      Fn* fn = static_cast<Fn*>(storage);
      (*fn)();
      fn->~Fn();
    }
    static void MoveConstruct(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { static_cast<Fn*>(storage)->~Fn(); }
    static constexpr Ops kOps{&Invoke, &InvokeDestroy, &MoveConstruct, &Destroy};
  };

  void MoveFrom(InlineTask&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move_construct(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  // ops_ precedes the storage so that a task with a small capture keeps its
  // dispatch pointer and the first capture bytes on one cache line (the
  // event queue embeds tasks in slab nodes; this ordering keeps a node's
  // hot metadata together).
  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineTaskCapacity];
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_INLINE_TASK_H_
