// Explicit state machine with checked transitions, in the style of dqlite's
// lib/sm.h.
//
// Lifecycles that used to be ad-hoc boolean flags ("speculated",
// "response_received", "completed", ...) become a declared graph: each state
// lists the exact set of successors it may move to, and every Move() is
// validated against that table. An illegal transition is a logic bug, so it
// aborts immediately — in every build type, not just under assert() — with
// the offending edge named. The table is a static array of StateSpec, one
// per state, indexed by the enum's integer value.
//
// Usage:
//   enum class Phase { kIdle, kRunning, kDone };
//   constexpr SmStateSpec kPhaseSpec[] = {
//       {"idle",    SmMask(Phase::kRunning)},
//       {"running", SmMask(Phase::kDone) | SmMask(Phase::kIdle)},
//       {"done",    0},  // Terminal.
//   };
//   Sm<Phase> sm(kPhaseSpec, Phase::kIdle);
//   sm.Move(Phase::kRunning);   // OK.
//   sm.Move(Phase::kDone);      // OK.
//   sm.Move(Phase::kRunning);   // Aborts: "done -> running".

#ifndef RADICAL_SRC_COMMON_SM_H_
#define RADICAL_SRC_COMMON_SM_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace radical {

// One row of a state machine's transition table.
struct SmStateSpec {
  const char* name;   // For diagnostics.
  uint32_t allowed;   // Bitmask of legal successor states (SmMask below).
};

// Bit for state `s` in an `allowed` mask. States must therefore number < 32
// — plenty for a lifecycle graph, and what keeps the check one AND.
template <typename State>
constexpr uint32_t SmMask(State s) {
  return 1u << static_cast<uint32_t>(s);
}

// A tiny checked state machine over `State` (an enum with values 0..N-1).
// The spec table outlives the machine (point it at a constexpr array).
template <typename State>
class Sm {
 public:
  Sm(const SmStateSpec* spec, State initial) : spec_(spec), state_(initial) {}

  State state() const { return state_; }
  bool Is(State s) const { return state_ == s; }
  const char* name() const { return spec_[Index(state_)].name; }

  // True when the table allows state() -> next.
  bool CanMove(State next) const {
    return (spec_[Index(state_)].allowed & SmMask(next)) != 0;
  }

  // Transitions to `next`; aborts the process on an edge the table does not
  // declare. Self-loops must be declared like any other edge.
  void Move(State next) {
    if (!CanMove(next)) {
      std::fprintf(stderr, "sm: illegal transition %s -> %s\n",
                   spec_[Index(state_)].name, spec_[Index(next)].name);
      std::abort();
    }
    state_ = next;
  }

 private:
  static constexpr uint32_t Index(State s) { return static_cast<uint32_t>(s); }

  const SmStateSpec* spec_;
  State state_;
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_SM_H_
