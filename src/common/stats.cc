#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace radical {

std::string Summary::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "n=" << count << " mean=" << mean_ms << "ms p50=" << p50_ms << "ms p90=" << p90_ms
     << "ms p99=" << p99_ms << "ms max=" << max_ms << "ms";
  return os.str();
}

void LatencySampler::Add(SimDuration sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void LatencySampler::Merge(const LatencySampler& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void LatencySampler::Clear() {
  samples_.clear();
  sorted_ = true;
}

void LatencySampler::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencySampler::PercentileMs(double pct) const {
  assert(pct >= 0.0 && pct <= 100.0);
  // An empty sampler has no order statistics; return 0.0 like MeanMs. (The
  // old assert was a no-op under NDEBUG and the fall-through read
  // samples_[0] of an empty vector — undefined behavior in release builds.)
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (samples_.size() == 1) {
    return ToMillis(samples_[0]);
  }
  const double pos = pct / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return ToMillis(samples_[lo]) * (1.0 - frac) + ToMillis(samples_[hi]) * frac;
}

double LatencySampler::MeanMs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const SimDuration s : samples_) {
    sum += ToMillis(s);
  }
  return sum / static_cast<double>(samples_.size());
}

Summary LatencySampler::Summarize() const {
  Summary out;
  out.count = samples_.size();
  if (samples_.empty()) {
    return out;
  }
  EnsureSorted();
  out.mean_ms = MeanMs();
  out.min_ms = ToMillis(samples_.front());
  out.p50_ms = PercentileMs(50.0);
  out.p90_ms = PercentileMs(90.0);
  out.p99_ms = PercentileMs(99.0);
  out.max_ms = ToMillis(samples_.back());
  return out;
}

Histogram::Histogram(double bucket_width_ms, double max_ms) : bucket_width_ms_(bucket_width_ms) {
  assert(bucket_width_ms > 0.0);
  assert(max_ms > 0.0);
  // One extra bucket catches overflow samples.
  counts_.assign(static_cast<size_t>(std::ceil(max_ms / bucket_width_ms)) + 1, 0);
}

size_t Histogram::BucketFor(double ms) const {
  if (ms < 0.0) {
    return 0;
  }
  const size_t b = static_cast<size_t>(ms / bucket_width_ms_);
  return std::min(b, counts_.size() - 1);
}

void Histogram::Add(SimDuration sample) {
  ++counts_[BucketFor(ToMillis(sample))];
  ++total_;
}

double Histogram::FractionBetween(double lo_ms, double hi_ms) const {
  if (total_ == 0) {
    return 0.0;
  }
  uint64_t n = 0;
  for (size_t b = BucketFor(lo_ms); b < BucketFor(hi_ms); ++b) {
    n += counts_[b];
  }
  return static_cast<double>(n) / static_cast<double>(total_);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) {
      continue;
    }
    os << "[" << b * bucket_width_ms_ << "," << (b + 1) * bucket_width_ms_
       << ") -> " << counts_[b] << "\n";
  }
  return os.str();
}

void Counters::Increment(const std::string& name, uint64_t by) { counters_[name] += by; }

uint64_t Counters::Get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Counters::RatioOf(const std::string& num, const std::string& denom) const {
  const double n = static_cast<double>(Get(num));
  const double d = static_cast<double>(Get(denom));
  if (n + d == 0.0) {
    return 0.0;
  }
  return n / (n + d);
}

}  // namespace radical
