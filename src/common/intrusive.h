// Intrusive doubly-linked queue, in the style of dqlite's lib/queue.h.
//
// Nodes embed an IntrusiveLink member and link themselves into a circular
// list anchored at a sentinel, so pushing and popping never allocates: the
// memory for the link travels with the object it tracks. This is the
// building block of the simulator's zero-allocation hot path — slab free
// lists, scratch-buffer pools, and any FIFO whose elements already live in
// recycled storage thread through it instead of a deque.
//
// Ownership: the list never owns its nodes. Destroying a node that is still
// linked corrupts the list — callers unlink first (the link's destructor
// asserts it is detached in debug builds).

#ifndef RADICAL_SRC_COMMON_INTRUSIVE_H_
#define RADICAL_SRC_COMMON_INTRUSIVE_H_

#include <cassert>
#include <cstddef>

namespace radical {

// One hook inside a node. A default-constructed link is detached (points at
// itself, the circular-list convention dqlite uses: an empty queue is a
// sentinel whose prev/next are the sentinel).
class IntrusiveLink {
 public:
  IntrusiveLink() : prev_(this), next_(this) {}
  ~IntrusiveLink() { assert(detached() && "destroying a still-linked node"); }

  IntrusiveLink(const IntrusiveLink&) = delete;
  IntrusiveLink& operator=(const IntrusiveLink&) = delete;

  bool detached() const { return next_ == this; }

  // Removes this link from whatever list holds it; no-op when detached.
  void Unlink() {
    prev_->next_ = next_;
    next_->prev_ = prev_;
    prev_ = this;
    next_ = this;
  }

 private:
  template <typename T, IntrusiveLink T::*Member>
  friend class IntrusiveList;

  // Inserts this link between `before` and `before->next_`.
  void InsertAfter(IntrusiveLink* before) {
    assert(detached() && "node is already on a list");
    next_ = before->next_;
    prev_ = before;
    before->next_->prev_ = this;
    before->next_ = this;
  }

  IntrusiveLink* prev_;
  IntrusiveLink* next_;
};

// FIFO queue over nodes of type T that embed `IntrusiveLink T::*Member`.
// Push/pop/remove are O(1) pointer splices with no bookkeeping: the list
// keeps no size counter (the event queue pushes and pops one of these per
// simulated event, and owners that need a count — EventQueue's live_ —
// already track their own). size() walks and is for tests/diagnostics only.
// Usage:
//
//   struct Waiter { ...; IntrusiveLink link; };
//   IntrusiveList<Waiter, &Waiter::link> queue;
//   queue.PushBack(&w);
//   Waiter* head = queue.PopFront();
template <typename T, IntrusiveLink T::*Member>
class IntrusiveList {
 public:
  IntrusiveList() = default;

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.detached(); }

  // O(n); diagnostics and tests only — hot paths use empty() or the
  // owner's own counter.
  size_t size() const {
    size_t n = 0;
    for (T* node = front(); node != nullptr; node = Next(node)) {
      ++n;
    }
    return n;
  }

  void PushBack(T* node) { (node->*Member).InsertAfter(head_.prev_); }

  void PushFront(T* node) { (node->*Member).InsertAfter(&head_); }

  T* front() const { return empty() ? nullptr : FromLink(head_.next_); }
  T* back() const { return empty() ? nullptr : FromLink(head_.prev_); }

  // Walks from `node` toward the back; nullptr past the last node. With
  // front(), this is enough to traverse without exposing iterators:
  //
  //   for (T* n = list.front(); n != nullptr; n = list.Next(n)) ...
  T* Next(T* node) const {
    IntrusiveLink* next = (node->*Member).next_;
    return next == &head_ ? nullptr : FromLink(next);
  }

  // Detaches and returns the oldest node; nullptr when empty.
  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* node = FromLink(head_.next_);
    Remove(node);
    return node;
  }

  // Detaches `node`, which must be on *this* list (unchecked beyond the
  // linked assertion, as with dqlite's queue).
  void Remove(T* node) {
    assert(!(node->*Member).detached() && "removing a node that is not linked");
    (node->*Member).Unlink();
  }

 private:
  static T* FromLink(IntrusiveLink* link) {
    // The standard container_of dance: Member's byte offset inside T.
    return reinterpret_cast<T*>(reinterpret_cast<char*>(link) - MemberOffset());
  }
  static size_t MemberOffset() {
    alignas(T) static char probe_storage[sizeof(T)];
    T* probe = reinterpret_cast<T*>(probe_storage);
    return static_cast<size_t>(reinterpret_cast<char*>(&(probe->*Member)) -
                               reinterpret_cast<char*>(probe));
  }

  IntrusiveLink head_;
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_INTRUSIVE_H_
