// Result<T>: a lightweight value-or-error type used instead of exceptions.
//
// The codebase follows the Google style rule of not using exceptions across
// public API boundaries; fallible operations return Result<T> (or Status for
// void-returning operations) carrying a human-readable error message.

#ifndef RADICAL_SRC_COMMON_RESULT_H_
#define RADICAL_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace radical {

// Error state shared by Status and Result<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !error_.has_value(); }
  // Requires: !ok().
  const std::string& message() const {
    assert(error_.has_value());
    return *error_;
  }

  bool operator==(const Status& other) const { return error_ == other.error_; }

 private:
  explicit Status(std::string message) : error_(std::move(message)) {}

  std::optional<std::string> error_;
};

// A value of type T or an error message. T must be movable.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` or
  // `return Status::Error("...")`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "use Result(T) for success");
  }

  static Result<T> Error(std::string message) {
    return Result<T>(Status::Error(std::move(message)));
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  // Requires: !ok().
  const std::string& message() const { return status_.message(); }

  // Requires: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_RESULT_H_
