// Value: the dynamic value type shared by the storage layer and the
// deterministic function runtime.
//
// Functions in Radical are WebAssembly blobs whose storage accesses move
// bytes; this reproduction models payloads as a small dynamic type (unit,
// int64, string, list-of-values), which is rich enough to express every
// function in the evaluation (timelines are lists of post keys, hotel
// availability is an integer, ...). Value is immutable once stored.

#ifndef RADICAL_SRC_COMMON_VALUE_H_
#define RADICAL_SRC_COMMON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace radical {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  // Unit (absent/none) value.
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}                 // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(google-explicit-constructor)
  Value(ValueList v)                              // NOLINT(google-explicit-constructor)
      : rep_(std::make_shared<ValueList>(std::move(v))) {}

  bool is_unit() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_list() const { return std::holds_alternative<std::shared_ptr<ValueList>>(rep_); }

  // Accessors assert on the stored alternative.
  int64_t AsInt() const;
  const std::string& AsString() const;
  const ValueList& AsList() const;

  // Deep structural equality.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Rough size in bytes for cost accounting (payload size on the wire).
  size_t ApproxSizeBytes() const;

  // Human-readable rendering, e.g. `["post:3", 42]`.
  std::string ToString() const;

  // Deterministic 64-bit structural hash (used by functions that need a
  // stable digest, e.g. the pbkdf2-like login check).
  uint64_t StableHash() const;

 private:
  // Lists are shared_ptr so copying Values (pervasive in the interpreter) is
  // cheap; Values are logically immutable so sharing is safe.
  std::variant<std::monostate, int64_t, std::string, std::shared_ptr<ValueList>> rep_;
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_VALUE_H_
