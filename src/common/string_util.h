// Small string helpers used across reporting code.

#ifndef RADICAL_SRC_COMMON_STRING_UTIL_H_
#define RADICAL_SRC_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace radical {

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Left-pads (or passes through) to `width` with spaces.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits);

// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_STRING_UTIL_H_
