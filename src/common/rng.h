// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (network jitter, workload key
// selection, client think times) draws from an explicitly seeded Rng so that
// a given seed reproduces a byte-identical run. The generator is
// xoshiro256** seeded via splitmix64, which is fast and high quality for
// simulation purposes (not cryptographic).
//
// ZipfGenerator implements the skewed key-popularity distribution used by the
// paper's workloads (zipf parameter 0.99 for selecting users/posts, §5.3).

#ifndef RADICAL_SRC_COMMON_RNG_H_
#define RADICAL_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace radical {

// splitmix64 step; used for seeding and as a cheap standalone mixer.
uint64_t SplitMix64(uint64_t& state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi]. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Samples from a normal distribution via Box-Muller.
  double NextGaussian(double mean, double stddev);

  // Forks an independent generator; the child stream does not overlap the
  // parent's for any practical sequence length.
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks over [0, n). Rank 0 is the most popular item.
// Uses the classic precomputed-CDF method with binary search; construction is
// O(n), sampling is O(log n). Suitable for the key-space sizes used in the
// evaluation (thousands to hundreds of thousands of keys).
class ZipfGenerator {
 public:
  // theta is the zipf exponent (0.99 in the paper's workloads). theta == 0
  // degenerates to uniform.
  ZipfGenerator(uint64_t n, double theta);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Samples a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  // Probability mass of the given rank (for tests).
  double Pmf(uint64_t rank) const;

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_RNG_H_
