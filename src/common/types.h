// Core scalar types shared across the Radical codebase.
//
// All simulated time in this repository is expressed in *microseconds* of
// virtual time (SimTime). Helper constructors below keep call sites readable
// (e.g. `Millis(120)` for a 120 ms function execution).

#ifndef RADICAL_SRC_COMMON_TYPES_H_
#define RADICAL_SRC_COMMON_TYPES_H_

#include <cstdint>

namespace radical {

// Virtual time, in microseconds since simulation start.
using SimTime = int64_t;

// A span of virtual time, in microseconds.
using SimDuration = int64_t;

constexpr SimDuration Micros(int64_t us) { return us; }
constexpr SimDuration Millis(int64_t ms) { return ms * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000; }

// Converts a duration to fractional milliseconds for reporting.
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1000.0; }

// Item version numbers. kMissingVersion marks an item absent from a cache;
// the LVI protocol sends it so validation is guaranteed to fail and the
// response repopulates the cache (§3.2, "Managing caches").
using Version = int64_t;
constexpr Version kMissingVersion = -1;

// Globally unique id for one execution of one function (one client request).
using ExecutionId = uint64_t;

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_TYPES_H_
