// Minimal leveled logging.
//
// The simulator is deterministic and single-threaded, so logging is a plain
// stream with a global level; benches run with kWarn to keep output clean,
// tests may raise the level when debugging protocol traces.

#ifndef RADICAL_SRC_COMMON_LOGGING_H_
#define RADICAL_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace radical {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global log level; defaults to kWarn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr if `level` is enabled.
void LogLine(LogLevel level, const std::string& message);

// Stream-style helper: LogMessage(kInfo).stream() << ...; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define RLOG(level) \
  if (::radical::GetLogLevel() <= ::radical::LogLevel::level) \
  ::radical::LogMessage(::radical::LogLevel::level).stream()

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_LOGGING_H_
