#include "src/common/string_util.h"

#include <cstdio>

namespace radical {

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace radical
