// Slab allocator: chunked, index-addressable object pool with free-list
// recycling.
//
// A SlabPool hands out fixed-size slots from chunks of kChunkSlots objects.
// Slot addresses are stable for the pool's lifetime (growth appends chunks,
// it never moves existing ones), so intrusive links and raw pointers into
// slots stay valid across Allocate/Release churn. Released slots go onto a
// pointer-chained free list (the chain lives inside the free slots
// themselves) and are reused LIFO, so a steady-state workload — allocate,
// use, release,
// repeat — touches the heap only while the pool is still growing toward its
// high-water mark. This is the allocation discipline behind the simulator's
// zero-allocation event path: the event queue recycles its nodes through a
// SlabPool and the allocation-counter test (tests/alloc_test.cc) pins the
// "zero" claim.
//
// Slots are also addressable by uint32_t index (chunk = index / kChunkSlots);
// the index is what compact bookkeeping structures (EventIds) store instead
// of a pointer. The free list is a raw pointer chain on purpose: popping a
// free slot is one load and one store with no index-to-address translation,
// the cheapest possible hot-path allocation, and the slot's intrusive link
// member stays entirely the owner's (the event queue threads it into timing
// wheel slot lists while the node is live).

#ifndef RADICAL_SRC_COMMON_SLAB_H_
#define RADICAL_SRC_COMMON_SLAB_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace radical {

// T must be default-constructible and embed two bookkeeping members the pool
// manages: `uint32_t slab_index;` (the slot's own index, written once at
// chunk creation) and `T* slab_next_free;` (the free-list chain, meaningful
// only while the slot is free).
// T objects are constructed once when their chunk is created and reused in
// place; per-use payload setup/teardown is the caller's job (the event queue
// places/destroys its callback in raw storage inside the node).
template <typename T, uint32_t kChunkSlots = 256>
class SlabPool {
  static_assert((kChunkSlots & (kChunkSlots - 1)) == 0,
                "kChunkSlots must be a power of two (index math is a shift)");

 public:
  SlabPool() = default;

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Takes a slot off the free list, growing by one chunk when empty.
  // Amortized O(1); allocates only when the pool grows. Returns the slot
  // directly — the caller reaches its index through slab_index when a
  // compact handle is needed.
  T* Allocate() {
    if (free_head_ == nullptr) {
      Grow();
    }
    T* node = free_head_;
    free_head_ = node->slab_next_free;
    ++live_;
    return node;
  }

  // Returns a slot to the free list. The caller has already torn down any
  // per-use payload state.
  void Release(T* node) {
    assert(live_ > 0);
    --live_;
    node->slab_next_free = free_head_;
    free_head_ = node;  // LIFO: the hottest slot is reused first.
  }

  T& At(uint32_t index) {
    assert(index < capacity_);
    return chunks_[index / kChunkSlots][index & (kChunkSlots - 1)];
  }
  const T& At(uint32_t index) const {
    assert(index < capacity_);
    return chunks_[index / kChunkSlots][index & (kChunkSlots - 1)];
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t live() const { return live_; }

 private:
  void Grow() {
    chunks_.push_back(std::make_unique<T[]>(kChunkSlots));
    T* chunk = chunks_.back().get();
    // Chain in reverse so slots allocate in ascending index order.
    for (uint32_t i = kChunkSlots; i-- > 0;) {
      chunk[i].slab_index = capacity_ + i;
      chunk[i].slab_next_free = free_head_;
      free_head_ = &chunk[i];
    }
    capacity_ += kChunkSlots;
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  T* free_head_ = nullptr;
  uint32_t capacity_ = 0;
  uint32_t live_ = 0;
};

}  // namespace radical

#endif  // RADICAL_SRC_COMMON_SLAB_H_
