#include "src/common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace radical {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextGaussian(double mean, double stddev) {
  // Box-Muller; draws two uniforms per sample (no caching, keeps state simple
  // and replay-deterministic).
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa02bdbf7bb3c0a7ULL); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) {
    c /= sum;
  }
  cdf_.back() = 1.0;  // Guard against rounding.
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::Pmf(uint64_t rank) const {
  assert(rank < n_);
  if (rank == 0) {
    return cdf_[0];
  }
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace radical
