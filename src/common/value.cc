#include "src/common/value.h"

#include <cassert>
#include <sstream>

namespace radical {

namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashBytes(const std::string& s) {
  // FNV-1a.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

int64_t Value::AsInt() const {
  assert(is_int());
  return std::get<int64_t>(rep_);
}

const std::string& Value::AsString() const {
  assert(is_string());
  return std::get<std::string>(rep_);
}

const ValueList& Value::AsList() const {
  assert(is_list());
  return *std::get<std::shared_ptr<ValueList>>(rep_);
}

bool Value::operator==(const Value& other) const {
  if (rep_.index() != other.rep_.index()) {
    return false;
  }
  if (is_unit()) {
    return true;
  }
  if (is_int()) {
    return AsInt() == other.AsInt();
  }
  if (is_string()) {
    return AsString() == other.AsString();
  }
  const ValueList& a = AsList();
  const ValueList& b = other.AsList();
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

size_t Value::ApproxSizeBytes() const {
  if (is_unit()) {
    return 1;
  }
  if (is_int()) {
    return 8;
  }
  if (is_string()) {
    return AsString().size();
  }
  size_t total = 8;
  for (const Value& v : AsList()) {
    total += v.ApproxSizeBytes();
  }
  return total;
}

std::string Value::ToString() const {
  if (is_unit()) {
    return "unit";
  }
  if (is_int()) {
    return std::to_string(AsInt());
  }
  if (is_string()) {
    return "\"" + AsString() + "\"";
  }
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Value& v : AsList()) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << v.ToString();
  }
  os << "]";
  return os.str();
}

uint64_t Value::StableHash() const {
  if (is_unit()) {
    return 0x5bd1e995;
  }
  if (is_int()) {
    return MixHash(1, static_cast<uint64_t>(AsInt()));
  }
  if (is_string()) {
    return MixHash(2, HashBytes(AsString()));
  }
  uint64_t h = 3;
  for (const Value& v : AsList()) {
    h = MixHash(h, v.StableHash());
  }
  return h;
}

}  // namespace radical
