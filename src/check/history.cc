#include "src/check/history.h"

namespace radical {

std::map<Key, std::vector<HistoryOp>> HistoryRecorder::ByKey() const {
  std::map<Key, std::vector<HistoryOp>> out;
  for (const HistoryOp& op : ops_) {
    out[op.key].push_back(op);
  }
  return out;
}

}  // namespace radical
