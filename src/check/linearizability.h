// Linearizability checker for register histories.
//
// Wing & Gong's algorithm with Lowe-style memoization, specialized to
// single-key read/write registers: a depth-first search over linearization
// prefixes, where a pending operation may be linearized next only if no
// other pending operation completed before it began (real-time order), reads
// must return the value of the most recently linearized write, and states
// are memoized by (linearized-set, last-write) pairs.
//
// Complexity is exponential in the worst case; tests keep per-key histories
// at <= 64 concurrent-cluster sizes, which the memoized search handles
// easily. Linearizability is compositional (Herlihy & Wing), so checking
// each key independently checks the whole history.

#ifndef RADICAL_SRC_CHECK_LINEARIZABILITY_H_
#define RADICAL_SRC_CHECK_LINEARIZABILITY_H_

#include <optional>
#include <string>

#include "src/check/history.h"

namespace radical {

struct LinearizabilityResult {
  bool linearizable = true;
  std::string violation;  // Human-readable description of the first failure.
};

// Checks one key's history against an atomic register initialized to
// `initial` (unit for "key absent"; reads of an absent key return unit).
// Requires ops.size() <= 64.
LinearizabilityResult CheckRegisterHistory(const std::vector<HistoryOp>& ops,
                                           const Value& initial);

// Checks every key of the recorded history; `initials` supplies per-key
// initial values (absent key -> unit).
LinearizabilityResult CheckHistory(const HistoryRecorder& history,
                                   const std::map<Key, Value>& initials);

}  // namespace radical

#endif  // RADICAL_SRC_CHECK_LINEARIZABILITY_H_
