// Operation histories for consistency checking.
//
// Tests drive register-shaped functions (one read or one write of a single
// key) through a deployment and record each operation's real-time invocation
// and response instants. The checker (linearizability.h) then decides
// whether the per-key history admits a legal linearization — the paper's
// correctness claim (§3.6) made machine-checkable.

#ifndef RADICAL_SRC_CHECK_HISTORY_H_
#define RADICAL_SRC_CHECK_HISTORY_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/common/value.h"
#include "src/kv/item.h"

namespace radical {

struct HistoryOp {
  bool is_write = false;
  Key key;
  Value value;          // Written value, or the value the read returned.
  SimTime invoke = 0;   // When the client issued the request.
  SimTime response = 0; // When the client received the result.
};

class HistoryRecorder {
 public:
  // Records one completed operation.
  void Record(HistoryOp op) { ops_.push_back(std::move(op)); }

  // Ops grouped per key (linearizability is compositional across keys).
  std::map<Key, std::vector<HistoryOp>> ByKey() const;

  const std::vector<HistoryOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

 private:
  std::vector<HistoryOp> ops_;
};

}  // namespace radical

#endif  // RADICAL_SRC_CHECK_HISTORY_H_
