#include "src/check/linearizability.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace radical {

namespace {

struct SearchState {
  const std::vector<HistoryOp>* ops;
  const Value* initial;
  // Visited (linearized-mask, last-write-index) pairs; -1 = initial value.
  std::set<std::pair<uint64_t, int>> visited;
};

// Value of the register after the write at `last_write` (-1 = initial).
const Value& RegisterValue(const SearchState& s, int last_write) {
  if (last_write < 0) {
    return *s.initial;
  }
  return (*s.ops)[static_cast<size_t>(last_write)].value;
}

bool Search(SearchState& s, uint64_t done_mask, int last_write) {
  const size_t n = s.ops->size();
  if (done_mask == (n == 64 ? ~0ULL : ((1ULL << n) - 1))) {
    return true;
  }
  if (!s.visited.emplace(done_mask, last_write).second) {
    return false;
  }
  // An op may linearize next only if it is pending and no other pending op
  // responded before it was invoked (else that one must come first).
  SimTime min_pending_response = INT64_MAX;
  for (size_t i = 0; i < n; ++i) {
    if ((done_mask & (1ULL << i)) == 0) {
      min_pending_response = std::min(min_pending_response, (*s.ops)[i].response);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if ((done_mask & (1ULL << i)) != 0) {
      continue;
    }
    const HistoryOp& op = (*s.ops)[i];
    if (op.invoke > min_pending_response) {
      continue;  // Some pending op strictly precedes it in real time.
    }
    if (op.is_write) {
      if (Search(s, done_mask | (1ULL << i), static_cast<int>(i))) {
        return true;
      }
    } else {
      if (op.value == RegisterValue(s, last_write) &&
          Search(s, done_mask | (1ULL << i), last_write)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

LinearizabilityResult CheckRegisterHistory(const std::vector<HistoryOp>& ops,
                                           const Value& initial) {
  LinearizabilityResult result;
  if (ops.empty()) {
    return result;
  }
  if (ops.size() > 64) {
    result.linearizable = false;
    result.violation = "history too large for the checker (> 64 ops per key)";
    return result;
  }
  SearchState state{&ops, &initial, {}};
  if (!Search(state, 0, -1)) {
    result.linearizable = false;
    std::ostringstream os;
    os << "no linearization exists for key " << ops.front().key << " (" << ops.size()
       << " ops)";
    result.violation = os.str();
  }
  return result;
}

LinearizabilityResult CheckHistory(const HistoryRecorder& history,
                                   const std::map<Key, Value>& initials) {
  for (const auto& [key, ops] : history.ByKey()) {
    const auto it = initials.find(key);
    const Value initial = it == initials.end() ? Value() : it->second;
    const LinearizabilityResult result = CheckRegisterHistory(ops, initial);
    if (!result.linearizable) {
      return result;
    }
  }
  return LinearizabilityResult{};
}

}  // namespace radical
