#include "src/radical/runtime.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/lvi/codec.h"

namespace radical {

Runtime::Runtime(Simulator* sim, Network* network, Region region, Region server_region,
                 LviServer* server, const FunctionRegistry* registry,
                 const Interpreter* interpreter, const RadicalConfig& config,
                 ExternalServiceRegistry* externals, net::Endpoint server_endpoint)
    : sim_(sim),
      network_(network),
      region_(region),
      server_region_(server_region),
      server_(server),
      registry_(registry),
      interpreter_(interpreter),
      config_(config),
      cache_(config.cache),
      metrics_(&sim->metrics(),
               sim->metrics().UniqueScopeName(std::string("runtime.") + RegionName(region))),
      externals_(externals) {
  latency_hist_ = metrics_.histogram("e2e_latency");
  self_ = network->AddEndpoint(std::string("runtime@") + RegionName(region), region);
  if (server_endpoint.valid()) {
    server_endpoint_ = server_endpoint;
  } else {
    // Standalone runtime (tests): register a private server address carrying
    // the intra-DC hop to the server's EC2 instance.
    server_endpoint_ = network->AddEndpoint(
        std::string("lvi-server@") + RegionName(server_region), server_region,
        kServerHopRtt / 2);
  }
}

void Runtime::set_shard_endpoints(std::vector<net::Endpoint> endpoints) {
  shard_endpoints_ = std::move(endpoints);
  shard_router_ = ShardRouter(
      shard_endpoints_.empty() ? 1 : static_cast<int>(shard_endpoints_.size()));
}

void Runtime::RouteToServer(RequestState* state, const Key* first_key) const {
  if (shard_endpoints_.empty()) {
    state->server_ep = server_endpoint_;
    return;
  }
  int shard = 0;
  if (state->shard_hint >= 0 && state->shard_hint < static_cast<int>(shard_endpoints_.size())) {
    shard = state->shard_hint;
  } else if (first_key != nullptr) {
    shard = shard_router_.ShardOf(*first_key);
  }
  state->server_ep = shard_endpoints_[static_cast<size_t>(shard)];
}

void Runtime::Crash() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  ++epoch_;
  metrics_.Increment("crashes");
  // The process died: the cache's contents are gone (a restarted PoP warms
  // from scratch) and every in-flight request's pending events now carry a
  // dead epoch, so they drop on arrival instead of answering anyone.
  cache_.CrashRestart();
  // One-shot: listeners re-register on whichever runtime they re-bind to.
  std::vector<std::function<void()>> listeners = std::move(crash_listeners_);
  crash_listeners_.clear();
  for (auto& listener : listeners) {
    listener();
  }
}

void Runtime::Recover() {
  if (alive_) {
    return;
  }
  alive_ = true;
  metrics_.Increment("recoveries");
}

void Runtime::Submit(Request request, RequestOptions options, OutcomeFn done) {
  SubmitImpl(std::move(request), std::move(options), std::move(done));
}

void Runtime::SubmitImpl(Request request, RequestOptions options, OutcomeFn done) {
  if (!alive_) {
    // A crashed PoP accepts nothing; sessions re-bind on the crash signal,
    // so only a caller holding a stale handle lands here.
    metrics_.Increment("rejected_runtime_down");
    auto fn = std::make_shared<OutcomeFn>(std::move(done));
    sim_->Schedule(0, [fn] { (*fn)(Outcome{RequestStatus::kRejected, Value(), 0}); });
    return;
  }
  metrics_.Increment("requests");
  const SimTime invoked_at = sim_->Now();
  // Everything per-request moves onto the heap-allocated state up front, so
  // the scheduled closure stays within the event queue's inline capacity
  // (this + shared_ptr + the consistency mode). exec_id is still assigned
  // when the event *runs* — id allocation order is part of the deterministic
  // schedule and must not move to Submit time.
  auto state = std::make_shared<RequestState>();
  state->function = std::move(request.function);
  state->inputs = std::move(request.inputs);
  state->done = std::move(done);
  state->session = std::move(options.session);
  state->session_seq = options.session_seq;
  state->replay_exec_id = options.replay_exec_id;
  state->preview_requested = options.consistency == ConsistencyMode::kPreviewThenFinal ||
                             options.consistency == ConsistencyMode::kSession;
  state->born_epoch = epoch_;
  state->retry = options.retry.has_value() ? *options.retry : config_.retry;
  state->trace_enabled = options.trace;
  state->shard_hint = options.shard_hint;
  // A relative deadline anchors at Submit: instantiation and blob load count
  // against it, same as they count against the user's patience.
  state->deadline = options.deadline == 0 ? 0 : invoked_at + options.deadline;
  state->trace.region = region_;
  state->trace.invoked = invoked_at;
  if (state->deadline != 0) {
    // Deadline watchdog: a deadlined request always completes by its
    // deadline, even with retries disabled and its response discarded on the
    // wire (the fabric drops messages that would land past the deadline, and
    // without a retry timer nothing else would ever fire).
    state->deadline_event = sim_->Schedule(state->deadline - invoked_at, [this, state] {
      state->deadline_event = kInvalidEventId;
      if (!state->completed && !DeadRequest(*state)) {
        CompleteRejected(state, RequestStatus::kDeadlineExceeded, 0);
      }
    });
  }
  const ConsistencyMode consistency = options.consistency;
  // §5.5 components (1) and (2): instantiate the function, load the blob.
  sim_->Schedule(config_.lambda_invoke + config_.blob_load,
                 [this, state = std::move(state), consistency]() mutable {
    if (DeadRequest(*state)) {
      return;
    }
    // Failover replays reuse the original execution's id so the server's
    // idempotency machinery resolves it exactly once; everything else draws
    // a fresh id here (allocation order is part of the schedule).
    state->exec_id = state->replay_exec_id != 0 ? state->replay_exec_id : sim_->NextId();
    if (state->session != nullptr && state->session->on_exec_assigned) {
      state->session->on_exec_assigned(state->session_seq, state->exec_id);
    }
    RouteToServer(state.get(), nullptr);
    state->trace.exec_id = state->exec_id;
    state->trace.function = state->function;
    state->trace.frw_started = sim_->Now();
    const AnalyzedFunction* fn = registry_->Find(state->function);
    assert(fn != nullptr && "function not registered");
    if (consistency == ConsistencyMode::kDirect) {
      // The caller opted out of the near-user protocol: execute at the
      // near-storage location, same as the unanalyzable path.
      metrics_.Increment("direct_requested");
      InvokeDirect(std::move(state));
      return;
    }
    if (!fn->analyzable) {
      // §3.3 failure case: always run in the near-storage location.
      metrics_.Increment("direct_unanalyzable");
      InvokeDirect(std::move(state));
      return;
    }
    // (1) Run f^rw on the same inputs to get this execution's read/write set.
    RwPrediction prediction = PredictRwSet(*fn, state->inputs, &cache_, *interpreter_);
    if (!prediction.ok()) {
      metrics_.Increment("frw_failed");
      InvokeDirect(std::move(state));
      return;
    }
    // f^rw runs strictly before f (its latency is on the critical path,
    // §3.3/§7); gathering the item versions costs one batched cache read.
    const SimDuration frw_cost =
        config_.frw_invoke_overhead + prediction.elapsed + cache_.options().read_latency;
    sim_->Schedule(frw_cost, [this, state = std::move(state),
                              rw = std::move(prediction.rw)]() mutable {
      StartLvi(std::move(state), std::move(rw));
    });
  });
}

void Runtime::StartLvi(std::shared_ptr<RequestState> state, RwSet rw) {
  if (DeadRequest(*state)) {
    return;
  }
  RequestTrace::StampOnce(&state->trace.lvi_sent, sim_->Now());
  const AnalyzedFunction* fn = registry_->Find(state->function);
  // Assemble the LVI request: every item with its cached version and lock
  // mode; misses carry version -1 so validation is guaranteed to fail and
  // the response repopulates the cache (§3.2).
  LviRequest request;
  request.exec_id = state->exec_id;
  request.origin = region_;
  request.function = state->function;
  request.inputs = state->inputs;
  request.deadline = state->deadline;
  // Speculation is pointless only when a key the function *reads* is absent
  // from the cache (validation is then guaranteed to fail, §3.2). A missing
  // blind-write key is normal — functions create keys (new posts, bookings,
  // votes) — and carries -1 that matches the primary's "absent" on the
  // validate step.
  bool read_missing = false;
  for (const Key& key : rw.AllKeysSorted()) {
    const Version version = cache_.VersionOf(key);
    if (version == kMissingVersion && rw.reads.count(key) > 0) {
      read_missing = true;
    }
    request.items.push_back(LviItem{key, version, rw.ModeFor(key)});
    if (rw.ModeFor(key) == LockMode::kWrite) {
      state->write_keys.push_back(key);
      state->write_base_versions.push_back(version);
    }
  }
  // Session admission check (read-your-writes / monotonic reads): an item
  // the cache holds *below* the session's high-water mark means speculating
  // would preview state the session has already seen past. Upgrade to a
  // validated read — the LVI request still goes out (validation fails
  // against the fresher primary and the backup execution answers with
  // current state), but no speculation runs and no stale preview fires. The
  // floor also travels on the wire so validation can assert the primary
  // itself hasn't regressed.
  bool session_stale = false;
  if (state->session != nullptr) {
    request.session_id = state->session->id;
    for (LviItem& item : request.items) {
      const auto it = state->session->floor.find(item.key);
      if (it != state->session->floor.end()) {
        item.session_floor = it->second;
      }
      if (item.cached_version < item.session_floor) {
        session_stale = true;
      }
    }
    if (session_stale) {
      ++state->session->stale_upgrades;
      metrics_.Increment("session_stale_upgrade");
    }
  }
  // (2b) Send the LVI request to the near-storage location. Wire sizes are
  // the exact encoded lengths (src/lvi/codec.h). The request is kept on the
  // state for retransmission: exec_ids make the server side idempotent, so a
  // retry replays the cached reply or re-attaches to the running pipeline
  // rather than re-locking or re-executing.
  state->lvi_request = std::move(request);
  state->lvi_request_size = wire_scratch_.SizeOf(state->lvi_request);
  if (!state->lvi_request.items.empty()) {
    // Sharded server: now that the key set is known, re-route the request
    // onto its home shard's channel (a hint, if given, still wins).
    RouteToServer(state.get(), &state->lvi_request.items.front().key);
  }
  SendLviAttempt(state);
  if (state->completed) {
    // The first attempt already ended the request (deadline passed before
    // the send): don't start a speculation nobody will consume.
    return;
  }

  // (2a) Speculatively execute f against the cache, writes buffered. Skipped
  // on a cache miss (validation is guaranteed to fail) and under the
  // no-speculation ablation.
  if (read_missing) {
    metrics_.Increment("spec_skipped_miss");
    return;
  }
  if (session_stale) {
    metrics_.Increment("spec_skipped_session_stale");
    return;
  }
  if (!config_.speculation_enabled) {
    metrics_.Increment("spec_disabled");
    return;
  }
  state->buffer = std::make_unique<WriteBuffer>(&cache_);
  const ExecEnv env{state->exec_id, externals_};
  const ExecResult exec = interpreter_->Execute(fn->original, state->inputs,
                                                state->buffer.get(), config_.exec_limits, &env);
  assert(exec.ok() && "speculative execution failed");
  state->speculated = true;
  state->trace.speculated = true;
  metrics_.Increment("speculations");
  sim_->Schedule(exec.elapsed, [this, state, result = exec.return_value] {
    if (DeadRequest(*state)) {
      return;
    }
    state->spec_finished = true;
    RequestTrace::StampOnce(&state->trace.spec_finished, sim_->Now());
    state->spec_result = result;
    MaybeDeliverPreview(state);
    TryComplete(state);
  });
}

void Runtime::MaybeDeliverPreview(const std::shared_ptr<RequestState>& state) {
  // A preview is worth delivering only while the final is still unknown: if
  // the LVI response already arrived, the authoritative callback fires at
  // this same instant and a preview would be pure noise.
  if (!state->preview_requested || state->preview_fired || state->completed ||
      state->response_received || !state->done) {
    return;
  }
  state->preview_fired = true;
  metrics_.Increment("previews_delivered");
  if (state->session != nullptr) {
    ++state->session->previews;
  }
  RequestTrace::StampOnce(&state->trace.preview_delivered, sim_->Now());
  // Copy, not move: the same callback still owes the client its final.
  OutcomeFn done = state->done;
  done(Outcome{RequestStatus::kPreview, state->spec_result, 0});
}

SimDuration Runtime::AttemptTimeout(const RetryPolicy& retry, int attempt) {
  double timeout = static_cast<double>(retry.request_timeout);
  for (int i = 1; i < attempt; ++i) {
    timeout *= retry.backoff;
  }
  return static_cast<SimDuration>(
      std::min(timeout, static_cast<double>(retry.max_backoff)));
}

void Runtime::CancelTimeout(const std::shared_ptr<RequestState>& state) {
  if (state->timeout_event != kInvalidEventId) {
    sim_->Cancel(state->timeout_event);
    state->timeout_event = kInvalidEventId;
  }
}

void Runtime::RecordAttempt(const std::shared_ptr<RequestState>& state, AttemptPath path,
                            int number) {
  RequestTrace& trace = state->trace;
  ++trace.attempts_total;
  if (trace.attempts.size() >= kMaxStoredAttempts) {
    // A request stuck behind a long partition retries forever; without this
    // cap its trace grew one record per retry for the life of the outage.
    // Evict the oldest *resolved* record — open attempts stay, because
    // ResolveAttempt must still find them. At most one attempt per path is
    // open at a time, so a full window always has something resolved.
    bool evicted = false;
    for (auto it = trace.attempts.begin(); it != trace.attempts.end(); ++it) {
      if (!it->outcome.empty()) {
        trace.attempts.erase(it);
        evicted = true;
        break;
      }
    }
    ++trace.attempts_dropped;
    if (!evicted) {
      return;  // Every stored record is open: count the send, drop its record.
    }
  }
  trace.attempts.push_back(RequestAttempt{path, number, sim_->Now(), 0, {}});
}

void Runtime::ResolveAttempt(const std::shared_ptr<RequestState>& state, AttemptPath path,
                             const char* outcome) {
  auto& attempts = state->trace.attempts;
  for (auto it = attempts.rbegin(); it != attempts.rend(); ++it) {
    if (it->path == path && it->outcome.empty()) {
      it->resolved = sim_->Now();
      it->outcome = outcome;
      return;
    }
  }
}

void Runtime::SendLviAttempt(const std::shared_ptr<RequestState>& state) {
  if (state->completed || state->response_received || DeadRequest(*state)) {
    return;
  }
  if (DeadlinePassed(*state)) {
    CompleteRejected(state, RequestStatus::kDeadlineExceeded, 0);
    return;
  }
  ++state->lvi_attempts;
  if (state->lvi_attempts > 1) {
    metrics_.Increment("retries");
    ++state->trace.retries;
  }
  // Fail fast when the deterministic fault state (partition, isolation)
  // guarantees the send would be dropped: skip the wire, keep the backoff
  // schedule running at a quarter of the timeout so recovery is noticed
  // quickly. Probabilistic loss is invisible, as on a real network.
  const bool reachable = self_.CanReach(state->server_ep);
  RecordAttempt(state, AttemptPath::kLvi, state->lvi_attempts);
  if (reachable) {
    SendToServer(state->server_ep, net::MessageKind::kLviRequest, state->lvi_request_size,
                 [this, state] {
      server_->HandleLviRequest(state->lvi_request, [this, state](LviResponse response) {
        const size_t size = wire_scratch_.SizeOf(response);
        SendFromServer(state->server_ep, net::MessageKind::kLviResponse, size,
                       [this, state, response = std::move(response)]() mutable {
                         OnLviResponse(state, std::move(response));
                       },
                       state->deadline);
      });
    }, state->deadline);
  } else {
    metrics_.Increment("fast_fail");
    ResolveAttempt(state, AttemptPath::kLvi, "fast_fail");
  }
  if (!state->retry.enabled) {
    return;
  }
  const SimDuration timeout = AttemptTimeout(state->retry, state->lvi_attempts);
  state->timeout_event = sim_->Schedule(reachable ? timeout : timeout / 4, [this, state] {
    state->timeout_event = kInvalidEventId;
    OnLviTimeout(state);
  });
}

void Runtime::OnLviResponse(const std::shared_ptr<RequestState>& state, LviResponse response) {
  if (DeadRequest(*state)) {
    return;
  }
  if (state->completed || state->response_received || state->lvi_abandoned) {
    // A slow or duplicate response raced a retry (or the direct fallback
    // already owns the request): the first one in wins.
    metrics_.Increment("late_response_ignored");
    return;
  }
  if (response.status != ResponseStatus::kOk) {
    // Backpressure, not an answer: the server refused admission (kOverloaded)
    // or shed the request against its deadline (kShed). Nothing executed.
    CancelTimeout(state);
    const bool overloaded = response.status == ResponseStatus::kOverloaded;
    metrics_.Increment(overloaded ? "rejected_by_server" : "shed_by_server");
    ResolveAttempt(state, AttemptPath::kLvi, overloaded ? "rejected" : "shed");
    OnBackpressure(state, AttemptPath::kLvi, response.status, response.retry_after);
    return;
  }
  CancelTimeout(state);
  state->response_received = true;
  ResolveAttempt(state, AttemptPath::kLvi, "response");
  RequestTrace::StampOnce(&state->trace.response_received, sim_->Now());
  state->trace.validated = response.validated;
  state->response = std::move(response);
  TryComplete(state);
}

void Runtime::OnLviTimeout(const std::shared_ptr<RequestState>& state) {
  if (state->completed || state->response_received || DeadRequest(*state)) {
    return;
  }
  metrics_.Increment("timeouts");
  ResolveAttempt(state, AttemptPath::kLvi, "timeout");
  if (DeadlinePassed(*state)) {
    CompleteRejected(state, RequestStatus::kDeadlineExceeded, 0);
    return;
  }
  if (!SpendRetryBudget(1.0)) {
    // Every retry — including the degrade-to-direct below, which is just a
    // retry on a different path — spends budget; an empty bucket ends the
    // request instead of adding load to a struggling deployment.
    CompleteRejected(state, RequestStatus::kRejected, 0);
    return;
  }
  if (state->lvi_attempts >= state->retry.max_lvi_attempts) {
    // Budget exhausted: degrade to the direct path, which retries without
    // bound. Discard the speculation — the direct response is authoritative
    // and never commits through a followup.
    metrics_.Increment("fallback_direct");
    state->lvi_abandoned = true;
    state->trace.fallback_direct = true;
    if (state->buffer != nullptr) {
      state->buffer->Discard();
      state->buffer.reset();
    }
    InvokeDirect(state);
    return;
  }
  SendLviAttempt(state);
}

void Runtime::SendDirectAttempt(const std::shared_ptr<RequestState>& state) {
  if (state->completed || DeadRequest(*state)) {
    return;
  }
  if (DeadlinePassed(*state)) {
    CompleteRejected(state, RequestStatus::kDeadlineExceeded, 0);
    return;
  }
  ++state->direct_attempts;
  if (state->direct_attempts > 1) {
    metrics_.Increment("retries");
    ++state->trace.retries;
  }
  const bool reachable = self_.CanReach(state->server_ep);
  RecordAttempt(state, AttemptPath::kDirect, state->direct_attempts);
  if (reachable) {
    SendToServer(state->server_ep, net::MessageKind::kDirectRequest, state->direct_request_size,
                 [this, state] {
      server_->HandleDirect(state->direct_request, [this, state](DirectResponse response) {
        const size_t response_size = wire_scratch_.SizeOf(response);
        SendFromServer(state->server_ep, net::MessageKind::kDirectResponse, response_size,
                       [this, state, response = std::move(response)]() mutable {
                         OnDirectResponse(state, std::move(response));
                       },
                       state->deadline);
      });
    }, state->deadline);
  } else {
    metrics_.Increment("fast_fail");
    ResolveAttempt(state, AttemptPath::kDirect, "fast_fail");
  }
  if (!state->retry.enabled) {
    return;
  }
  const SimDuration timeout = AttemptTimeout(state->retry, state->direct_attempts);
  state->timeout_event = sim_->Schedule(reachable ? timeout : timeout / 4, [this, state] {
    state->timeout_event = kInvalidEventId;
    OnDirectTimeout(state);
  });
}

void Runtime::OnDirectResponse(const std::shared_ptr<RequestState>& state,
                               DirectResponse response) {
  if (DeadRequest(*state)) {
    return;
  }
  if (state->completed) {
    metrics_.Increment("late_response_ignored");
    return;
  }
  if (response.status != ResponseStatus::kOk) {
    CancelTimeout(state);
    const bool overloaded = response.status == ResponseStatus::kOverloaded;
    metrics_.Increment(overloaded ? "rejected_by_server" : "shed_by_server");
    ResolveAttempt(state, AttemptPath::kDirect, overloaded ? "rejected" : "shed");
    OnBackpressure(state, AttemptPath::kDirect, response.status, response.retry_after);
    return;
  }
  CancelTimeout(state);
  state->completed = true;
  ResolveAttempt(state, AttemptPath::kDirect, "response");
  RequestTrace::StampOnce(&state->trace.response_received, sim_->Now());
  for (const FreshItem& item : response.fresh_items) {
    cache_.Install(item.key, item.value, item.version);
  }
  AdvanceSessionFloor(state, response.fresh_items);
  Reply(state, response.result);
}

void Runtime::OnDirectTimeout(const std::shared_ptr<RequestState>& state) {
  if (state->completed || DeadRequest(*state)) {
    return;
  }
  metrics_.Increment("timeouts");
  ResolveAttempt(state, AttemptPath::kDirect, "timeout");
  if (DeadlinePassed(*state)) {
    CompleteRejected(state, RequestStatus::kDeadlineExceeded, 0);
    return;
  }
  if (!SpendRetryBudget(1.0)) {
    CompleteRejected(state, RequestStatus::kRejected, 0);
    return;
  }
  SendDirectAttempt(state);
}

void Runtime::OnBackpressure(const std::shared_ptr<RequestState>& state, AttemptPath path,
                             ResponseStatus status, SimDuration retry_after) {
  (void)status;
  if (state->completed || DeadRequest(*state)) {
    return;
  }
  if (DeadlinePassed(*state)) {
    CompleteRejected(state, RequestStatus::kDeadlineExceeded, retry_after);
    return;
  }
  // An LVI request that exhausts its attempts on backpressure does NOT
  // degrade to the direct path — that sends the same work to the same
  // overloaded deployment with a longer critical path. It completes
  // kRejected, which is the graceful ending the budget exists to provide.
  if (!state->retry.enabled ||
      (path == AttemptPath::kLvi && state->lvi_attempts >= state->retry.max_lvi_attempts)) {
    CompleteRejected(state, RequestStatus::kRejected, retry_after);
    return;
  }
  // A backpressure retry costs more than a timeout retry: the server
  // explicitly said it cannot take the load.
  if (!SpendRetryBudget(config_.retry.reject_retry_cost)) {
    CompleteRejected(state, RequestStatus::kRejected, retry_after);
    return;
  }
  // Honor the server's drain hint, never retrying sooner than the backoff
  // schedule would have: an immediate resend into a server that just said
  // "overloaded" is precisely the amplification this path removes.
  const int attempts = path == AttemptPath::kLvi ? state->lvi_attempts : state->direct_attempts;
  const SimDuration wait = std::max(retry_after, AttemptTimeout(state->retry, attempts));
  sim_->Schedule(wait, [this, state, path] {
    if (path == AttemptPath::kLvi) {
      SendLviAttempt(state);
    } else {
      SendDirectAttempt(state);
    }
  });
}

bool Runtime::SpendRetryBudget(double cost) {
  const RetryPolicy& policy = config_.retry;
  if (policy.retry_budget <= 0.0) {
    return true;  // No budget configured: the historical unbounded behaviour.
  }
  const SimTime now = sim_->Now();
  if (!retry_bucket_init_) {
    retry_bucket_init_ = true;
    retry_tokens_ = policy.retry_budget;
    retry_tokens_at_ = now;
  }
  const double elapsed_sec =
      static_cast<double>(now - retry_tokens_at_) / static_cast<double>(Seconds(1));
  retry_tokens_ = std::min(policy.retry_budget,
                           retry_tokens_ + elapsed_sec * policy.retry_budget_refill_per_sec);
  retry_tokens_at_ = now;
  if (retry_tokens_ + 1e-9 < cost) {
    metrics_.Increment("retry_budget_exhausted");
    return false;
  }
  retry_tokens_ -= cost;
  return true;
}

bool Runtime::DeadlinePassed(const RequestState& state) const {
  return state.deadline != 0 && sim_->Now() >= state.deadline;
}

void Runtime::CompleteRejected(const std::shared_ptr<RequestState>& state, RequestStatus status,
                               SimDuration retry_after) {
  if (state->completed) {
    return;
  }
  CancelTimeout(state);
  state->completed = true;
  if (state->buffer != nullptr) {
    state->buffer->Discard();
    state->buffer.reset();
  }
  metrics_.Increment(status == RequestStatus::kDeadlineExceeded ? "deadline_exceeded_replies"
                                                         : "rejected_replies");
  FinishReply(state, Outcome{status, Value(), retry_after});
}

void Runtime::AdvanceSessionFloor(const std::shared_ptr<RequestState>& state,
                                  const std::vector<FreshItem>& items) {
  if (state->session == nullptr) {
    return;
  }
  for (const FreshItem& item : items) {
    Version& slot = state->session->floor[item.key];
    slot = std::max(slot, item.version);
  }
}

void Runtime::TryComplete(const std::shared_ptr<RequestState>& state) {
  // The client is answered only once the LVI response is in and — on the
  // speculative path — the execution has finished (§3.2: "Radical delays
  // responding to the client until it receives a response from the
  // near-storage location and f finishes executing").
  if (!state->response_received || state->completed) {
    return;
  }
  if (!state->response.validated) {
    state->completed = true;
    CompleteFailed(state);
    return;
  }
  if (state->speculated && !state->spec_finished) {
    return;
  }
  state->completed = true;
  CompleteValidated(state);
}

void Runtime::CompleteValidated(const std::shared_ptr<RequestState>& state) {
  if (state->speculated) {
    metrics_.Increment("validated_speculative");
    CommitSpeculation(state, state->spec_result);
    return;
  }
  // Validation succeeded but nothing ran speculatively (miss whose key is
  // absent at the primary too, or the no-speculation ablation): execute now
  // against the cache — validation pinned every item to the primary's state,
  // so the local run is equivalent to a near-storage run.
  metrics_.Increment("validated_local_exec");
  const AnalyzedFunction* fn = registry_->Find(state->function);
  state->buffer = std::make_unique<WriteBuffer>(&cache_);
  const ExecEnv env{state->exec_id, externals_};
  const ExecResult exec = interpreter_->Execute(fn->original, state->inputs, state->buffer.get(),
                                                config_.exec_limits, &env);
  assert(exec.ok());
  sim_->Schedule(exec.elapsed, [this, state, result = exec.return_value] {
    if (DeadRequest(*state)) {
      return;
    }
    CommitSpeculation(state, result);
  });
}

void Runtime::CommitSpeculation(const std::shared_ptr<RequestState>& state, Value result) {
  const std::vector<BufferedWrite> writes = state->buffer->DrainWrites();
  // Install the speculative writes into the cache at validated version + 1
  // — the exact version the primary will assign when the followup applies —
  // and bump the version along with the update (§3.1).
  for (const BufferedWrite& write : writes) {
    const auto pos =
        std::lower_bound(state->write_keys.begin(), state->write_keys.end(), write.key);
    assert(pos != state->write_keys.end() && *pos == write.key &&
           "speculative write outside the predicted write set");
    const size_t idx = static_cast<size_t>(pos - state->write_keys.begin());
    const Version installed = state->write_base_versions[idx] + 1;
    cache_.Install(write.key, write.value, installed);
    if (state->session != nullptr) {
      Version& slot = state->session->floor[write.key];
      slot = std::max(slot, installed);
    }
  }
  if (state->session != nullptr) {
    // Validation pinned every item's cached version to the primary: those
    // are versions this session has now observed, so they raise its floor
    // (reads too — monotonic reads span the whole item set).
    for (const LviItem& item : state->lvi_request.items) {
      if (item.cached_version > 0) {
        Version& slot = state->session->floor[item.key];
        slot = std::max(slot, item.cached_version);
      }
    }
  }
  const SimDuration install_cost = writes.empty() ? 0 : cache_.options().write_latency;
  sim_->Schedule(install_cost, [this, state, result = std::move(result),
                                writes = std::move(writes)]() mutable {
    if (DeadRequest(*state)) {
      return;
    }
    if (writes.empty()) {
      Reply(state, std::move(result));
      return;
    }
    WriteFollowup followup;
    followup.exec_id = state->exec_id;
    followup.writes = std::move(writes);
    if (config_.single_request_commit) {
      // (7a) Reply, then (8a) ship the followup *after* returning to the
      // client — the write intent guarantees the updates reach the primary
      // even if this message is lost.
      Reply(state, std::move(result));
      const size_t followup_size = wire_scratch_.SizeOf(followup);
      SendToServer(state->server_ep, net::MessageKind::kWriteFollowup, followup_size,
                   [this, followup = std::move(followup)]() mutable {
        server_->HandleFollowup(std::move(followup));
      });
      return;
    }
    // Two-round-trip ablation: wait for the server to apply the writes
    // before answering — what the LVI protocol exists to avoid. The followup
    // is kept for retransmission: a lost followup (or ack) no longer hangs
    // the client, and a nack from a down server retransmits immediately on
    // the backoff schedule.
    metrics_.Increment("two_rtt_commits");
    state->followup = std::move(followup);
    state->followup_size = wire_scratch_.SizeOf(state->followup);
    state->pending_result = std::move(result);
    SendFollowupAttempt(state);
  });
}

void Runtime::SendFollowupAttempt(const std::shared_ptr<RequestState>& state) {
  if (state->followup_done || DeadRequest(*state)) {
    return;
  }
  ++state->followup_attempts;
  if (state->followup_attempts > 1) {
    metrics_.Increment("retries");
    metrics_.Increment("followup_retransmits");
    ++state->trace.retries;
  }
  const bool reachable = self_.CanReach(state->server_ep);
  RecordAttempt(state, AttemptPath::kFollowup, state->followup_attempts);
  if (reachable) {
    SendToServer(state->server_ep, net::MessageKind::kWriteFollowup, state->followup_size,
                 [this, state] {
      server_->HandleFollowup(state->followup, [this, state](bool applied) {
        SendFromServer(state->server_ep, net::MessageKind::kGeneric, 64,
                       [this, state, applied] { OnFollowupAck(state, applied); });
      });
    });
  } else {
    metrics_.Increment("fast_fail");
    ResolveAttempt(state, AttemptPath::kFollowup, "fast_fail");
  }
  if (!state->retry.enabled) {
    return;
  }
  double timeout = static_cast<double>(state->retry.followup_ack_timeout);
  for (int i = 1; i < state->followup_attempts; ++i) {
    timeout *= state->retry.backoff;
  }
  timeout = std::min(timeout, static_cast<double>(state->retry.max_backoff));
  state->followup_timer =
      sim_->Schedule(static_cast<SimDuration>(reachable ? timeout : timeout / 4),
                     [this, state] {
                       state->followup_timer = kInvalidEventId;
                       OnFollowupTimeout(state);
                     });
}

void Runtime::OnFollowupAck(const std::shared_ptr<RequestState>& state, bool applied) {
  if (state->followup_done || DeadRequest(*state)) {
    return;
  }
  if (state->followup_timer != kInvalidEventId) {
    sim_->Cancel(state->followup_timer);
    state->followup_timer = kInvalidEventId;
  }
  if (!applied) {
    // Deterministic failure (the server was down): retransmit now instead
    // of waiting out the timer, unless the budget is spent.
    metrics_.Increment("followup_nacks");
    ResolveAttempt(state, AttemptPath::kFollowup, "nack");
    if (state->followup_attempts >= state->retry.max_followup_attempts ||
        !state->retry.enabled) {
      GiveUpFollowup(state);
      return;
    }
    SendFollowupAttempt(state);
    return;
  }
  state->followup_done = true;
  ResolveAttempt(state, AttemptPath::kFollowup, "ack");
  Reply(state, std::move(state->pending_result));
}

void Runtime::OnFollowupTimeout(const std::shared_ptr<RequestState>& state) {
  if (state->followup_done || DeadRequest(*state)) {
    return;
  }
  ResolveAttempt(state, AttemptPath::kFollowup, "timeout");
  if (state->followup_attempts >= state->retry.max_followup_attempts) {
    GiveUpFollowup(state);
    return;
  }
  SendFollowupAttempt(state);
}

void Runtime::GiveUpFollowup(const std::shared_ptr<RequestState>& state) {
  // Retransmission budget spent. The write intent already guarantees the
  // writes reach the primary (deterministic re-execution, §3.4), so answer
  // the client rather than hang — the ablation's second round trip degrades
  // to the one-RTT guarantee under failure.
  metrics_.Increment("followup_give_up");
  state->followup_done = true;
  ResolveAttempt(state, AttemptPath::kFollowup, "gave_up");
  Reply(state, std::move(state->pending_result));
}

void Runtime::CompleteFailed(const std::shared_ptr<RequestState>& state) {
  metrics_.Increment("invalidated_speculative");
  // (8b) Repair the cache with the fresh items from the backup execution,
  // then (9b) return the backup result to the client.
  if (state->buffer != nullptr) {
    state->buffer->Discard();
  }
  for (const FreshItem& item : state->response.fresh_items) {
    cache_.Install(item.key, item.value, item.version);
  }
  AdvanceSessionFloor(state, state->response.fresh_items);
  if (state->session != nullptr) {
    // Items that *did* match the primary were observed at their cached
    // version even though the request as a whole aborted.
    for (const LviItem& item : state->lvi_request.items) {
      if (item.cached_version > 0) {
        Version& slot = state->session->floor[item.key];
        slot = std::max(slot, item.cached_version);
      }
    }
  }
  const SimDuration repair_cost =
      state->response.fresh_items.empty() ? 0 : cache_.options().write_latency;
  sim_->Schedule(repair_cost, [this, state] {
    if (DeadRequest(*state)) {
      return;
    }
    Reply(state, state->response.backup_result);
  });
}

void Runtime::InvokeDirect(std::shared_ptr<RequestState> state) {
  state->direct_request.exec_id = state->exec_id;
  state->direct_request.origin = region_;
  state->direct_request.function = state->function;
  state->direct_request.inputs = state->inputs;
  state->direct_request.deadline = state->deadline;
  state->direct_request.session_id = state->session != nullptr ? state->session->id : 0;
  state->trace.direct = true;
  state->direct_request_size = wire_scratch_.SizeOf(state->direct_request);
  SendDirectAttempt(state);
}


void Runtime::SendToServer(const net::Endpoint& server, net::MessageKind kind, size_t bytes,
                           std::function<void()> deliver, SimTime deadline) {
  self_.Send(server, kind, bytes, std::move(deliver), deadline);
}

void Runtime::SendFromServer(const net::Endpoint& server, net::MessageKind kind, size_t bytes,
                             std::function<void()> deliver, SimTime deadline) {
  server.Send(self_, kind, bytes, std::move(deliver), deadline);
}

void Runtime::Reply(const std::shared_ptr<RequestState>& state, Value result) {
  // When a preview went out but validation never confirmed the speculation
  // (abort with backup result, or degrade to the direct path), the final is
  // kAborted: still authoritative — `result` is what actually executed — but
  // the tentative answer the client may have acted on is not it.
  const bool confirmed = state->trace.validated && !state->trace.direct;
  const RequestStatus status = state->preview_fired && !confirmed ? RequestStatus::kAborted
                                                                  : RequestStatus::kOk;
  if (status == RequestStatus::kAborted) {
    metrics_.Increment("preview_aborted");
  } else if (state->preview_fired) {
    metrics_.Increment("preview_confirmed");
  }
  FinishReply(state, Outcome{status, std::move(result), 0});
}

void Runtime::FinishReply(const std::shared_ptr<RequestState>& state, Outcome outcome) {
  if (!state->done) {
    // A duplicate completion (a late response racing a retry, or a second
    // ack) must not inflate the reply count: the client was answered once.
    metrics_.Increment("duplicate_replies");
    return;
  }
  state->completed = true;
  if (state->deadline_event != kInvalidEventId) {
    sim_->Cancel(state->deadline_event);
    state->deadline_event = kInvalidEventId;
  }
  metrics_.Increment("replies");
  RequestTrace::StampOnce(&state->trace.replied, sim_->Now());
  if (outcome.status == RequestStatus::kOk || outcome.status == RequestStatus::kAborted) {
    // Only executed results feed the end-to-end histogram: a rejection
    // completes in a fraction of a real request's latency and would drag the
    // percentiles down exactly when they matter most (rejected/deadline
    // endings have their own counters). kAborted finals executed in full —
    // they belong in the distribution.
    latency_hist_->Record(state->trace.Total());
  }
  if (state->trace_enabled) {
    if (tracer_ != nullptr) {
      tracer_->Record(state->trace);
    }
    AppendSpans(state->trace, spans_);
  }
  OutcomeFn done = std::move(state->done);
  done(std::move(outcome));
}

}  // namespace radical
