#include "src/radical/trace.h"

#include <string>

namespace radical {

const char* AttemptPathName(AttemptPath path) {
  switch (path) {
    case AttemptPath::kLvi:
      return "lvi";
    case AttemptPath::kDirect:
      return "direct";
    case AttemptPath::kFollowup:
      return "followup";
  }
  return "?";
}

namespace {

void AddClientSpan(obs::SpanCollector* spans, const RequestTrace& trace, const char* name,
                   SimTime start, SimTime end,
                   std::vector<std::pair<std::string, std::string>> args = {}) {
  if (end < start) {
    return;  // Phase never happened on this path.
  }
  spans->Add(obs::Span{name, "runtime", obs::SpanTrack::kClient, trace.exec_id, start,
                       end - start, std::move(args)});
}

}  // namespace

void AppendSpans(const RequestTrace& trace, obs::SpanCollector* spans) {
  if (spans == nullptr) {
    return;
  }
  // The whole request, annotated with its outcome.
  AddClientSpan(spans, trace, "request", trace.invoked, trace.replied,
                {{"function", trace.function},
                 {"region", RegionName(trace.region)},
                 {"speculated", trace.speculated ? "true" : "false"},
                 {"validated", trace.validated ? "true" : "false"},
                 {"direct", trace.direct ? "true" : "false"},
                 {"fallback_direct", trace.fallback_direct ? "true" : "false"},
                 {"retries", std::to_string(trace.retries)}});
  // The §5.5 components, laid end to end under the request span.
  AddClientSpan(spans, trace, "instantiation", trace.invoked, trace.FrwStartAnchor());
  if (trace.lvi_sent != 0) {
    AddClientSpan(spans, trace, "frw", trace.FrwStartAnchor(), trace.lvi_sent);
  }
  AddClientSpan(spans, trace, "overlap_window", trace.DepartAnchor(), trace.ResponseAnchor());
  if (trace.speculated && trace.spec_finished != 0) {
    AddClientSpan(spans, trace, "speculation", trace.lvi_sent, trace.spec_finished);
  }
  if (trace.preview_delivered != 0) {
    // Preview phase: from the tentative answer until the final resolves.
    AddClientSpan(spans, trace, "preview_window", trace.preview_delivered, trace.replied,
                  {{"confirmed", trace.validated && !trace.direct ? "true" : "false"}});
  }
  if (trace.LviStall() > 0) {
    AddClientSpan(spans, trace, "lvi_stall", trace.spec_finished, trace.response_received);
  }
  AddClientSpan(spans, trace, "completion", trace.ResponseAnchor(), trace.replied);
  // One span per transmission, retries included.
  for (const RequestAttempt& attempt : trace.attempts) {
    const SimTime end = attempt.resolved != 0 ? attempt.resolved : attempt.sent;
    AddClientSpan(spans, trace,
                  (std::string(AttemptPathName(attempt.path)) + ".attempt#" +
                   std::to_string(attempt.number))
                      .c_str(),
                  attempt.sent, end,
                  {{"outcome", attempt.outcome.empty() ? "open" : attempt.outcome}});
  }
}

std::vector<const RequestTrace*> TraceCollector::ForFunction(const std::string& function) const {
  std::vector<const RequestTrace*> out;
  for (const RequestTrace& trace : traces_) {
    if (trace.function == function) {
      out.push_back(&trace);
    }
  }
  return out;
}

double TraceCollector::MeanMs(const std::string& function,
                              SimDuration (RequestTrace::*component)() const) const {
  double sum = 0.0;
  size_t n = 0;
  for (const RequestTrace& trace : traces_) {
    if (trace.function == function) {
      sum += ToMillis((trace.*component)());
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TraceCollector::LviBoundFraction(const std::string& function) const {
  size_t bound = 0;
  size_t n = 0;
  for (const RequestTrace& trace : traces_) {
    if (trace.function != function || !trace.speculated || !trace.validated) {
      continue;
    }
    ++n;
    if (trace.LviStall() > 0) {
      ++bound;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(bound) / static_cast<double>(n);
}

}  // namespace radical
