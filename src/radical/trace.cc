#include "src/radical/trace.h"

namespace radical {

std::vector<const RequestTrace*> TraceCollector::ForFunction(const std::string& function) const {
  std::vector<const RequestTrace*> out;
  for (const RequestTrace& trace : traces_) {
    if (trace.function == function) {
      out.push_back(&trace);
    }
  }
  return out;
}

double TraceCollector::MeanMs(const std::string& function,
                              SimDuration (RequestTrace::*component)() const) const {
  double sum = 0.0;
  size_t n = 0;
  for (const RequestTrace& trace : traces_) {
    if (trace.function == function) {
      sum += ToMillis((trace.*component)());
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TraceCollector::LviBoundFraction(const std::string& function) const {
  size_t bound = 0;
  size_t n = 0;
  for (const RequestTrace& trace : traces_) {
    if (trace.function != function || !trace.speculated || !trace.validated) {
      continue;
    }
    ++n;
    if (trace.LviStall() > 0) {
      ++bound;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(bound) / static_cast<double>(n);
}

}  // namespace radical
