// radical::Client — the single public entry point for submitting application
// requests to a Radical deployment.
//
// Historically callers reached into Runtime::Invoke directly, and anything
// per-request (retry budget, tracing, direct execution) required a separate
// Runtime configured differently. Client collapses all of that into one call:
//
//   client.Submit({"reg_write", {Value("k"), Value("v")}}, options, done);
//
// where RequestOptions carries every per-request knob — retry-policy
// override, consistency mode (full LVI protocol vs. near-storage direct
// execution), trace opt-in/out, and a shard channel hint for sharded
// servers. Runtime::Invoke survives for one PR as a deprecated thin wrapper
// (docs/api.md has the migration table).

#ifndef RADICAL_SRC_RADICAL_CLIENT_H_
#define RADICAL_SRC_RADICAL_CLIENT_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/value.h"
#include "src/radical/config.h"

namespace radical {

class Runtime;

// How a submitted request is allowed to execute.
enum class ConsistencyMode {
  // The default: the full LVI protocol — near-user speculation with
  // near-storage lock/validate/intent — falling back to direct execution
  // only when the LVI retry budget is exhausted. Linearizable.
  kLinearizable,
  // Skip the near-user protocol entirely and execute at the near-storage
  // location. Still linearizable (the primary serializes it), but pays the
  // full WAN round trip — the explicit escape hatch for requests known to be
  // cache-hostile, matching what the server forces for unanalyzable
  // functions (§3.3).
  kDirect,
};

// One application request: a registered function and its inputs.
struct Request {
  std::string function;
  std::vector<Value> inputs;
};

// How a submitted request ended, as seen by the client. (Named RequestStatus
// because radical::Status is the generic error-status type in
// src/common/result.h.)
enum class RequestStatus {
  // The request executed and `result` is its value.
  kOk = 0,
  // Backpressure: the server refused or shed the request (bounded admission
  // queue, deadline-aware shedding) and the client's retry budget did not
  // allow riding it out. The request did NOT execute; `retry_after` carries
  // the server's drain hint when one was given. Retrying immediately is
  // exactly the amplification the budget exists to prevent — honor the hint.
  kRejected = 1,
  // The request's deadline passed before a usable response arrived. The
  // request may or may not have executed server-side; the client stopped
  // waiting (and stopped retrying) because the answer is no longer useful.
  kDeadlineExceeded = 2,
};

const char* RequestStatusName(RequestStatus status);

// Full completion record for the outcome-aware Submit overloads. The
// Value-only DoneFn API remains and is unchanged: it only ever fires with an
// executed result, so callers that opt into deadlines or retry budgets (the
// features that can end a request without a result) use OutcomeFn.
struct Outcome {
  RequestStatus status = RequestStatus::kOk;
  // Meaningful only when status == kOk.
  Value result;
  // kRejected only: the server's suggested wait before new load (0 = none).
  SimDuration retry_after = 0;

  bool ok() const { return status == RequestStatus::kOk; }
};

// Per-request knobs. The zero-argument default reproduces the deployment's
// configured behaviour exactly.
struct RequestOptions {
  // Overrides the deployment's RetryPolicy for this request only (e.g. a
  // latency-critical request with a tighter timeout, or retries disabled
  // for an idempotency-sensitive probe). Unset = use RadicalConfig::retry.
  std::optional<RetryPolicy> retry;
  ConsistencyMode consistency = ConsistencyMode::kLinearizable;
  // Record a RequestTrace and client-track spans for this request (when a
  // collector is attached). On by default; high-volume callers opt out
  // per request instead of detaching the collector globally.
  bool trace = true;
  // Sharded servers: pin the request's server channel to this shard instead
  // of routing by the first item's key. Only selects the network channel —
  // the server always recomputes the authoritative shard from the key set,
  // so a wrong hint costs locality, never correctness. -1 = route
  // automatically.
  int shard_hint = -1;
  // Relative deadline from Submit; 0 = none (the historical behaviour). The
  // deadline travels with the request: the fabric discards messages that
  // would land after it, the server sheds work it cannot finish in time
  // (answering kShed instead of queueing), and the client stops
  // waiting/retrying past it. A deadlined request can therefore complete
  // with RequestStatus::kDeadlineExceeded — use the OutcomeFn Submit overloads.
  SimDuration deadline = 0;
};

// Thin facade over a Runtime. Copyable and cheap; the Runtime must outlive
// every Client referring to it.
class Client {
 public:
  using DoneFn = std::function<void(Value result)>;
  using OutcomeFn = std::function<void(Outcome outcome)>;

  explicit Client(Runtime* runtime) : runtime_(runtime) {}

  // Submits `request`; `done` fires (as a simulator event) when the result
  // is released to the client. The DoneFn overloads only ever fire with an
  // executed result; requests that end in backpressure (kRejected) or a
  // missed deadline fire a DoneFn with an empty Value — use the OutcomeFn
  // overloads to distinguish those endings.
  void Submit(Request request, DoneFn done);
  void Submit(Request request, RequestOptions options, DoneFn done);
  void Submit(Request request, OutcomeFn done);
  void Submit(Request request, RequestOptions options, OutcomeFn done);

  Runtime* runtime() const { return runtime_; }

 private:
  Runtime* runtime_ = nullptr;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_CLIENT_H_
