// radical::Client — the single public entry point for submitting application
// requests to a Radical deployment.
//
// Historically callers reached into Runtime::Invoke directly, and anything
// per-request (retry budget, tracing, direct execution) required a separate
// Runtime configured differently. Client collapses all of that into one call:
//
//   client.Submit({"reg_write", {Value("k"), Value("v")}}, options, done);
//
// where RequestOptions carries every per-request knob — retry-policy
// override, consistency mode (full LVI protocol vs. near-storage direct
// execution), trace opt-in/out, and a shard channel hint for sharded
// servers. Runtime::Invoke survives for one PR as a deprecated thin wrapper
// (docs/api.md has the migration table).

#ifndef RADICAL_SRC_RADICAL_CLIENT_H_
#define RADICAL_SRC_RADICAL_CLIENT_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/value.h"
#include "src/radical/config.h"

namespace radical {

class Runtime;

// How a submitted request is allowed to execute.
enum class ConsistencyMode {
  // The default: the full LVI protocol — near-user speculation with
  // near-storage lock/validate/intent — falling back to direct execution
  // only when the LVI retry budget is exhausted. Linearizable.
  kLinearizable,
  // Skip the near-user protocol entirely and execute at the near-storage
  // location. Still linearizable (the primary serializes it), but pays the
  // full WAN round trip — the explicit escape hatch for requests known to be
  // cache-hostile, matching what the server forces for unanalyzable
  // functions (§3.3).
  kDirect,
};

// One application request: a registered function and its inputs.
struct Request {
  std::string function;
  std::vector<Value> inputs;
};

// Per-request knobs. The zero-argument default reproduces the deployment's
// configured behaviour exactly.
struct RequestOptions {
  // Overrides the deployment's RetryPolicy for this request only (e.g. a
  // latency-critical request with a tighter timeout, or retries disabled
  // for an idempotency-sensitive probe). Unset = use RadicalConfig::retry.
  std::optional<RetryPolicy> retry;
  ConsistencyMode consistency = ConsistencyMode::kLinearizable;
  // Record a RequestTrace and client-track spans for this request (when a
  // collector is attached). On by default; high-volume callers opt out
  // per request instead of detaching the collector globally.
  bool trace = true;
  // Sharded servers: pin the request's server channel to this shard instead
  // of routing by the first item's key. Only selects the network channel —
  // the server always recomputes the authoritative shard from the key set,
  // so a wrong hint costs locality, never correctness. -1 = route
  // automatically.
  int shard_hint = -1;
};

// Thin facade over a Runtime. Copyable and cheap; the Runtime must outlive
// every Client referring to it.
class Client {
 public:
  using DoneFn = std::function<void(Value result)>;

  explicit Client(Runtime* runtime) : runtime_(runtime) {}

  // Submits `request`; `done` fires (as a simulator event) when the result
  // is released to the client.
  void Submit(Request request, DoneFn done);
  void Submit(Request request, RequestOptions options, DoneFn done);

  Runtime* runtime() const { return runtime_; }

 private:
  Runtime* runtime_ = nullptr;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_CLIENT_H_
