// radical::Client — the single public entry point for submitting application
// requests to a Radical deployment.
//
// Historically callers reached into Runtime::Invoke directly, and anything
// per-request (retry budget, tracing, direct execution) required a separate
// Runtime configured differently. Client collapses all of that into one call:
//
//   client.Submit({"reg_write", {Value("k"), Value("v")}}, options, done);
//
// where RequestOptions carries every per-request knob — retry-policy
// override, consistency mode (full LVI protocol vs. near-storage direct
// execution), trace opt-in/out, and a shard channel hint for sharded
// servers. Runtime::Invoke survives for one PR as a deprecated thin wrapper
// (docs/api.md has the migration table).

#ifndef RADICAL_SRC_RADICAL_CLIENT_H_
#define RADICAL_SRC_RADICAL_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/common/value.h"
#include "src/radical/config.h"

namespace radical {

class Runtime;

// How a submitted request is allowed to execute — the consistency spectrum.
enum class ConsistencyMode {
  // The default: the full LVI protocol — near-user speculation with
  // near-storage lock/validate/intent — falling back to direct execution
  // only when the LVI retry budget is exhausted. Linearizable. One callback:
  // the final outcome.
  kLinearizable,
  // Correctables-style incremental results: same execution as
  // kLinearizable, but the callback may fire *twice* — once with
  // Outcome{kPreview} the moment the speculative edge execution produces a
  // tentative result, then once with the final outcome (kOk when validation
  // confirmed the preview, kAborted when it didn't and the final result
  // differs). Finals alone are still linearizable; the preview is exactly as
  // trustworthy as the near-user cache it ran against.
  kPreviewThenFinal,
  // kPreviewThenFinal plus session guarantees: requests submitted through
  // the same radical::Session see read-your-writes and monotonic reads even
  // across previews. A cache read below the session's high-water version
  // upgrades to a validated (non-speculative) read instead of previewing
  // stale state. radical::Session::Submit selects this automatically.
  kSession,
  // Skip the near-user protocol entirely and execute at the near-storage
  // location. Still linearizable (the primary serializes it), but pays the
  // full WAN round trip — the explicit escape hatch for requests known to be
  // cache-hostile, matching what the server forces for unanalyzable
  // functions (§3.3).
  kDirect,
};

// One application request: a registered function and its inputs.
struct Request {
  std::string function;
  std::vector<Value> inputs;
};

// How a submitted request ended, as seen by the client. (Named RequestStatus
// because radical::Status is the generic error-status type in
// src/common/result.h.)
enum class RequestStatus {
  // The request executed and `result` is its value.
  kOk = 0,
  // Backpressure: the server refused or shed the request (bounded admission
  // queue, deadline-aware shedding) and the client's retry budget did not
  // allow riding it out. The request did NOT execute; `retry_after` carries
  // the server's drain hint when one was given. Retrying immediately is
  // exactly the amplification the budget exists to prevent — honor the hint.
  kRejected = 1,
  // The request's deadline passed before a usable response arrived. The
  // request may or may not have executed server-side; the client stopped
  // waiting (and stopped retrying) because the answer is no longer useful.
  kDeadlineExceeded = 2,
  // kPreviewThenFinal / kSession only: a *tentative* result from the
  // speculative edge execution, delivered before validation resolves. Never
  // the last callback — a final (kOk/kAborted/kRejected/kDeadlineExceeded)
  // always follows for the same request.
  kPreview = 3,
  // kPreviewThenFinal / kSession only: the final outcome when a preview was
  // delivered but LVI validation failed, so the authoritative result (in
  // `result`) came from the backup execution and may differ from the
  // preview. The request DID execute — kAborted aborts the *speculation*,
  // not the request.
  kAborted = 4,
};

const char* RequestStatusName(RequestStatus status);

// Full completion record delivered to OutcomeFn — the canonical callback
// payload. (The Value-only DoneFn overloads survive as deprecated wrappers
// that discard everything but `result`.)
struct Outcome {
  RequestStatus status = RequestStatus::kOk;
  // Meaningful when executed(): the tentative result for kPreview, the
  // authoritative one for kOk/kAborted.
  Value result;
  // kRejected only: the server's suggested wait before new load (0 = none).
  SimDuration retry_after = 0;

  // Final, validated success. (kAborted finals are also authoritative; test
  // executed() when "did it run" is the question.)
  bool ok() const { return status == RequestStatus::kOk; }
  // Tentative result — a final callback is still coming.
  bool preview() const { return status == RequestStatus::kPreview; }
  // The request executed and `result` holds a value (tentative for kPreview,
  // authoritative for kOk/kAborted).
  bool executed() const {
    return status == RequestStatus::kOk || status == RequestStatus::kPreview ||
           status == RequestStatus::kAborted;
  }
};

// Shared per-session state threaded (by radical::Session) through every
// request it submits. Lives behind a shared_ptr because callbacks referencing
// it can outlive both the Session handle and a crashed Runtime.
struct SessionCtx {
  // Deployment-scoped id; travels on the wire (LviRequest/DirectRequest).
  uint64_t id = 0;
  // High-water version vector: the highest version this session has observed
  // (read or written) per key. Admission compares the near-user cache
  // against it; below-floor reads upgrade to validated reads.
  std::map<Key, Version> floor;
  // Set by radical::Session: called (synchronously, inside Submit's
  // instantiate event) when the runtime assigns the request's ExecutionId,
  // keyed by the session's own sequence number. Failover replay needs the id
  // to re-resolve in-flight requests exactly once.
  std::function<void(uint64_t session_seq, ExecutionId exec_id)> on_exec_assigned;
  // Counters surfaced through Session::stats().
  uint64_t stale_upgrades = 0;  // Cache reads forced validated by the floor.
  uint64_t previews = 0;        // Preview callbacks delivered.
};

// Per-request knobs. The zero-argument default reproduces the deployment's
// configured behaviour exactly.
struct RequestOptions {
  // Overrides the deployment's RetryPolicy for this request only (e.g. a
  // latency-critical request with a tighter timeout, or retries disabled
  // for an idempotency-sensitive probe). Unset = use RadicalConfig::retry.
  std::optional<RetryPolicy> retry;
  ConsistencyMode consistency = ConsistencyMode::kLinearizable;
  // Record a RequestTrace and client-track spans for this request (when a
  // collector is attached). On by default; high-volume callers opt out
  // per request instead of detaching the collector globally.
  bool trace = true;
  // Sharded servers: pin the request's server channel to this shard instead
  // of routing by the first item's key. Only selects the network channel —
  // the server always recomputes the authoritative shard from the key set,
  // so a wrong hint costs locality, never correctness. -1 = route
  // automatically.
  int shard_hint = -1;
  // Relative deadline from Submit; 0 = none (the historical behaviour). The
  // deadline travels with the request: the fabric discards messages that
  // would land after it, the server sheds work it cannot finish in time
  // (answering kShed instead of queueing), and the client stops
  // waiting/retrying past it. A deadlined request can therefore complete
  // with RequestStatus::kDeadlineExceeded — use the OutcomeFn Submit overloads.
  SimDuration deadline = 0;
  // --- Set by radical::Session, not by applications. -----------------------
  // Session this request rides on (floor checks, wire tagging, preview
  // accounting). Null = sessionless.
  std::shared_ptr<SessionCtx> session;
  // The session's own sequence number for this request (on_exec_assigned key).
  uint64_t session_seq = 0;
  // Failover replay only: reuse this ExecutionId instead of allocating one,
  // so the server's idempotency machinery resolves the original execution
  // exactly once. 0 = allocate normally.
  ExecutionId replay_exec_id = 0;
};

// Thin facade over a Runtime. Copyable and cheap; the Runtime must outlive
// every Client referring to it.
class Client {
 public:
  using DoneFn = std::function<void(Value result)>;
  using OutcomeFn = std::function<void(Outcome outcome)>;

  explicit Client(Runtime* runtime) : runtime_(runtime) {}

  // Submits `request`; `done` fires (as a simulator event) when the result
  // is released to the client — and additionally, under
  // kPreviewThenFinal/kSession, once earlier with Outcome{kPreview}.
  void Submit(Request request, OutcomeFn done);
  void Submit(Request request, RequestOptions options, OutcomeFn done);

  // Deprecated: thin wrappers over the OutcomeFn overloads that fire with
  // outcome.result — an empty Value for non-executed endings (kRejected,
  // kDeadlineExceeded), and never for previews. New code should take the
  // Outcome. (Deliberately not [[deprecated]]: the wrappers stay warning-free
  // under CHECK_WERROR for the one release callers have to migrate.)
  void Submit(Request request, DoneFn done);
  void Submit(Request request, RequestOptions options, DoneFn done);

  Runtime* runtime() const { return runtime_; }

 private:
  Runtime* runtime_ = nullptr;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_CLIENT_H_
