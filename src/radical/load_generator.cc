#include "src/radical/load_generator.h"

namespace radical {

LoadGenerator::LoadGenerator(Simulator* sim, AppService* service, std::vector<Region> regions,
                             WorkloadFn workload, LoadGeneratorOptions options)
    : sim_(sim),
      service_(service),
      regions_(std::move(regions)),
      workload_(std::move(workload)),
      options_(options) {}

void LoadGenerator::Start() {
  total_clients_ = static_cast<int>(regions_.size()) * options_.clients_per_region;
  finished_clients_ = 0;
  for (const Region region : regions_) {
    for (int c = 0; c < options_.clients_per_region; ++c) {
      auto rng = std::make_shared<Rng>(sim_->rng().Fork());
      // Stagger client starts so they do not arrive in lockstep.
      const SimDuration stagger = static_cast<SimDuration>(
          rng->NextBelow(static_cast<uint64_t>(options_.think_time) + 1));
      sim_->Schedule(stagger, [this, region, rng] {
        RunClient(region, rng, options_.requests_per_client);
      });
    }
  }
}

void LoadGenerator::RunClient(Region region, std::shared_ptr<Rng> rng, uint64_t remaining) {
  if (remaining == 0) {
    ++finished_clients_;
    return;
  }
  RequestSpec spec = workload_(*rng);
  const SimTime start = sim_->Now();
  const std::string function = spec.function;
  service_->Invoke(region, function, std::move(spec.inputs),
                   [this, region, rng, remaining, start, function](Value result) {
                     (void)result;
                     samples_[{region, function}].Add(sim_->Now() - start);
                     ++total_requests_;
                     SimDuration think = options_.think_time;
                     if (options_.think_jitter_frac > 0.0 && think > 0) {
                       const double frac =
                           1.0 + options_.think_jitter_frac * (2.0 * rng->NextDouble() - 1.0);
                       think = static_cast<SimDuration>(static_cast<double>(think) * frac);
                     }
                     sim_->Schedule(think, [this, region, rng, remaining] {
                       RunClient(region, rng, remaining - 1);
                     });
                   });
}

LatencySampler LoadGenerator::Overall() const {
  LatencySampler out;
  for (const auto& [key, sampler] : samples_) {
    (void)key;
    out.Merge(sampler);
  }
  return out;
}

LatencySampler LoadGenerator::ForRegion(Region region) const {
  LatencySampler out;
  for (const auto& [key, sampler] : samples_) {
    if (key.first == region) {
      out.Merge(sampler);
    }
  }
  return out;
}

LatencySampler LoadGenerator::ForFunction(const std::string& function) const {
  LatencySampler out;
  for (const auto& [key, sampler] : samples_) {
    if (key.second == function) {
      out.Merge(sampler);
    }
  }
  return out;
}

LatencySampler LoadGenerator::ForRegionFunction(Region region,
                                                const std::string& function) const {
  LatencySampler out;
  const auto it = samples_.find({region, function});
  if (it != samples_.end()) {
    out.Merge(it->second);
  }
  return out;
}

}  // namespace radical
