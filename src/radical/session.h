// radical::Session — the consistency-spectrum client surface.
//
// A session is a lightweight, copyable handle bound to one deployment
// location. Submitting through it buys three things on top of radical::Client:
//
//  - Incremental results (Correctables-style): the callback fires up to twice
//    per request — Outcome{kPreview} the moment the speculative edge
//    execution has a tentative answer, then exactly one final
//    (kOk/kAborted/kRejected/kDeadlineExceeded) when LVI validation resolves.
//  - Session guarantees: read-your-writes and monotonic reads, enforced
//    against the near-user cache by a per-session high-water version vector.
//    A cache read below the session's floor upgrades to a validated read
//    (the LVI round trip still runs; the stale preview does not).
//  - SwiftCloud-style failover: when the bound edge runtime crashes
//    (Runtime::Crash), the session transparently re-binds to another alive
//    Runtime in the deployment, carrying its version vector with it and
//    replaying every unacked request — as a direct execution reusing the
//    original ExecutionId, so the server's idempotency machinery resolves
//    each one exactly once. Guarantees hold across the switch; callers just
//    see finals arrive (plus Session::failovers() ticking up).
//
// The handle must outlive the requests submitted through it: callbacks
// resolve through a weak reference and are dropped once every handle is gone.

#ifndef RADICAL_SRC_RADICAL_SESSION_H_
#define RADICAL_SRC_RADICAL_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/radical/client.h"
#include "src/sim/region.h"

namespace radical {

class RadicalDeployment;

class Session {
 public:
  using OutcomeFn = Client::OutcomeFn;

  // Prefer RadicalDeployment::OpenSession(region) — it allocates the id.
  Session(RadicalDeployment* deployment, Region region, uint64_t id);

  // Submits through the currently bound runtime. options.consistency
  // kLinearizable (the default) upgrades to kSession — previews plus session
  // guarantees; kPreviewThenFinal and kDirect are honored as given (kDirect
  // never previews). `done` receives at most one preview and exactly one
  // final while any handle to this session is alive.
  void Submit(Request request, OutcomeFn done);
  void Submit(Request request, RequestOptions options, OutcomeFn done);

  uint64_t id() const;
  // Where the session is currently bound (changes on failover).
  Region region() const;
  // Crash re-binds this session has survived.
  uint64_t failovers() const;
  // Requests submitted but without a final yet.
  size_t unacked() const;
  // Guarantee/preview accounting (see SessionCtx).
  uint64_t previews() const;
  uint64_t stale_upgrades() const;
  // The session's high-water version for `key` (0 = never observed).
  Version FloorOf(const Key& key) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_SESSION_H_
