#include "src/radical/deployment.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/lvi/codec.h"

namespace radical {

namespace {

// The near-storage location invokes backup copies the same way the near-user
// location invokes functions: Lambda instantiation plus blob load.
LviServerOptions ServerOptionsFor(const RadicalConfig& config) {
  LviServerOptions options = config.server;
  options.backup_invoke_overhead = config.lambda_invoke + config.blob_load;
  options.exec_limits = config.exec_limits;
  return options;
}

}  // namespace

PartitionMap PartitionMap::PerRegion(const std::vector<Region>& regions, Region primary) {
  PartitionMap map;
  map.partition_.fill(0);
  int next = 1;
  for (const Region r : regions) {
    if (r == primary) {
      continue;
    }
    map.partition_[static_cast<size_t>(r)] = next++;
  }
  map.num_partitions_ = next;
  return map;
}

RadicalDeployment::RadicalDeployment(Simulator* sim, Network* network, RadicalConfig config,
                                     std::vector<Region> regions, int replicated_locks)
    : sim_(sim),
      config_(std::move(config)),
      analyzer_(&HostRegistry::Standard()),
      interpreter_(&HostRegistry::Standard()),
      registry_(&analyzer_),
      primary_(config_.primary_store) {
  // CHECK_SHARD_MATRIX / CHECK_REPLICATED support: the environment can force
  // the server's shard count, batch window and replicated lock-group count
  // when the config leaves them at the defaults, so the whole tier-1 suite
  // exercises those hot paths unchanged (tools/check.sh).
  if (config_.server.shards <= 1) {
    if (const char* env = std::getenv("RADICAL_SHARDS")) {
      config_.server.shards = std::max(1, std::atoi(env));
    }
  }
  if (config_.server.batch_window <= 0) {
    if (const char* env = std::getenv("RADICAL_BATCH_WINDOW_US")) {
      config_.server.batch_window = Micros(std::max(0, std::atoi(env)));
    }
  }
  if (const char* env = std::getenv("RADICAL_FORCE_SESSIONS")) {
    force_sessions_ = std::atoi(env) != 0;
  }
  if (replicated_locks > 0) {
    // Multi-Raft: one Raft lock group per key-range shard. The server's
    // table shard count follows the group count so the hot path and the
    // lock groups share one ShardRouter partition (replicated_shards unset
    // keeps the paper's single-group, single-shard configuration).
    if (config_.server.replicated_shards <= 0) {
      if (const char* env = std::getenv("RADICAL_REPLICATED_SHARDS")) {
        config_.server.replicated_shards = std::max(1, std::atoi(env));
      }
    }
    config_.server.shards = std::max(1, config_.server.replicated_shards);
  }
  LockService* locks = nullptr;
  if (replicated_locks > 0) {
    const int groups = config_.server.shards;
    RaftOptions raft_options;
    // Multi-group deployments harden elections with pre-vote (a restarting
    // or partitioned node cannot depose a healthy group leader); the
    // single-group default keeps the exact historical option set.
    raft_options.pre_vote = groups > 1;
    replicated_locks_ = std::make_unique<ReplicatedLockService>(
        sim, replicated_locks, raft_options, LocalMeshOptions{}, /*batched=*/false, groups);
    const bool elected = replicated_locks_->Bootstrap();
    assert(elected && "replicated lock service failed to elect a leader");
    (void)elected;
    locks = replicated_locks_.get();
  } else if (config_.server.shards > 1) {
    sharded_locks_ = std::make_unique<ShardedLockService>(sim, config_.server.shards);
    locks = sharded_locks_.get();
  } else {
    local_locks_ = std::make_unique<LocalLockService>(sim);
    locks = local_locks_.get();
  }
  server_ = std::make_unique<LviServer>(sim, &primary_, &registry_, &interpreter_, locks,
                                        ServerOptionsFor(config_),
                                        /*replicated=*/replicated_locks > 0, &externals_);
  // One shared server address on the fabric; every runtime's LVI traffic
  // converges on it, so per-link stats show the real fan-in. A sharded
  // server gets one channel per shard — runtimes route each request onto
  // its home shard's channel (the admission queues really are independent).
  server_endpoint_ =
      network->AddEndpoint("lvi-server", kPrimaryRegion, kServerHopRtt / 2);
  if (config_.server.shards > 1) {
    for (int shard = 0; shard < config_.server.shards; ++shard) {
      shard_endpoints_.push_back(
          network->AddEndpoint("lvi-server.shard" + std::to_string(shard), kPrimaryRegion,
                               kServerHopRtt / 2));
    }
  }
  regions_ = regions;
  for (const Region region : regions) {
    auto runtime = std::make_unique<Runtime>(sim, network, region, kPrimaryRegion,
                                             server_.get(), &registry_, &interpreter_,
                                             config_, &externals_, server_endpoint_);
    if (!shard_endpoints_.empty()) {
      runtime->set_shard_endpoints(shard_endpoints_);
    }
    runtimes_.emplace(region, std::move(runtime));
  }
  // Store statistics surface as callback gauges: read at snapshot time, so
  // the kv hot paths carry no instrumentation cost.
  obs::MetricsRegistry& reg = sim->metrics();
  primary_.RegisterMetrics(&reg, reg.UniqueScopeName("store.primary"));
  for (const auto& [region, runtime] : runtimes_) {
    runtime->cache().RegisterMetrics(
        &reg, reg.UniqueScopeName(std::string("cache.") + RegionName(region)));
  }
}

void RadicalDeployment::AttachSpans(obs::SpanCollector* spans) {
  server_->set_span_collector(spans);
  for (auto& [region, runtime] : runtimes_) {
    (void)region;
    runtime->set_span_collector(spans);
  }
}

RadicalDeployment::~RadicalDeployment() = default;

void RadicalDeployment::Invoke(Region origin, const std::string& function,
                               std::vector<Value> inputs, std::function<void(Value)> done) {
  if (force_sessions_) {
    // Ambient per-region session (RADICAL_FORCE_SESSIONS=1): same guarantees
    // as an app-opened session, but Invoke's one-callback contract holds —
    // previews are swallowed and only the final's result is delivered.
    auto it = ambient_sessions_.find(origin);
    if (it == ambient_sessions_.end()) {
      it = ambient_sessions_.emplace(origin, OpenSession(origin)).first;
    }
    it->second.Submit(Request{function, std::move(inputs)},
                      [done = std::move(done)](Outcome outcome) {
                        if (!outcome.preview()) {
                          done(std::move(outcome.result));
                        }
                      });
    return;
  }
  client(origin).Submit(Request{function, std::move(inputs)},
                        [done = std::move(done)](Outcome outcome) {
                          done(std::move(outcome.result));
                        });
}

const AnalyzedFunction& RadicalDeployment::RegisterFunction(const FunctionDef& fn) {
  return registry_.Register(fn);
}

void RadicalDeployment::Seed(const Key& key, const Value& value) { primary_.Seed(key, value); }

void RadicalDeployment::WarmCaches() {
  primary_.ForEachItem([this](const Key& key, const Item& item) {
    for (auto& [region, runtime] : runtimes_) {
      (void)region;
      runtime->cache().Install(key, item.value, item.version);
    }
  });
}

Runtime& RadicalDeployment::runtime(Region region) {
  const auto it = runtimes_.find(region);
  assert(it != runtimes_.end() && "no runtime deployed in this region");
  return *it->second;
}

PrimaryBaselineDeployment::PrimaryBaselineDeployment(Simulator* sim, Network* network,
                                                     RadicalConfig config)
    : sim_(sim),
      network_(network),
      config_(std::move(config)),
      analyzer_(&HostRegistry::Standard()),
      interpreter_(&HostRegistry::Standard()),
      registry_(&analyzer_),
      primary_(config_.primary_store) {
  locks_ = std::make_unique<LocalLockService>(sim);
  server_ = std::make_unique<LviServer>(sim, &primary_, &registry_, &interpreter_, locks_.get(),
                                        ServerOptionsFor(config_), /*replicated=*/false,
                                        &externals_);
  obs::MetricsRegistry& reg = sim->metrics();
  primary_.RegisterMetrics(&reg, reg.UniqueScopeName("store.primary"));
}

void PrimaryBaselineDeployment::Invoke(Region origin, const std::string& function,
                                       std::vector<Value> inputs,
                                       std::function<void(Value)> done) {
  // The request crosses the WAN to the application running beside the
  // primary, executes there, and the response crosses back. No server hop:
  // the client invokes the application directly.
  DirectRequest request;
  request.exec_id = sim_->NextId();
  request.origin = origin;
  request.function = function;
  request.inputs = std::move(inputs);
  const size_t request_size = wire_scratch_.SizeOf(request);
  network_->endpoint(origin).Send(
      network_->endpoint(kPrimaryRegion), net::MessageKind::kDirectRequest, request_size,
      [this, origin, request = std::move(request), done = std::move(done)]() mutable {
        server_->HandleDirect(
            std::move(request),
            [this, origin, done = std::move(done)](DirectResponse response) mutable {
              const size_t response_size = wire_scratch_.SizeOf(response);
              network_->endpoint(kPrimaryRegion)
                  .Send(network_->endpoint(origin), net::MessageKind::kDirectResponse,
                        response_size,
                        [done = std::move(done),
                         result = std::move(response.result)]() mutable {
                          done(std::move(result));
                        });
            });
      });
}

const AnalyzedFunction& PrimaryBaselineDeployment::RegisterFunction(const FunctionDef& fn) {
  return registry_.Register(fn);
}

void PrimaryBaselineDeployment::Seed(const Key& key, const Value& value) {
  primary_.Seed(key, value);
}

LocalIdealDeployment::LocalIdealDeployment(Simulator* sim, RadicalConfig config,
                                           std::vector<Region> regions)
    : sim_(sim),
      config_(std::move(config)),
      analyzer_(&HostRegistry::Standard()),
      interpreter_(&HostRegistry::Standard()),
      registry_(&analyzer_) {
  for (const Region region : regions) {
    // Local storage with cache-grade latency: the paper's red line runs each
    // location against its own (inconsistent) local store.
    VersionedStoreOptions options;
    options.read_latency = config_.cache.read_latency;
    options.write_latency = config_.cache.write_latency;
    stores_.emplace(region, std::make_unique<VersionedStore>(options));
  }
  obs::MetricsRegistry& reg = sim->metrics();
  for (const auto& [region, store] : stores_) {
    store->RegisterMetrics(
        &reg, reg.UniqueScopeName(std::string("store.") + RegionName(region)));
  }
}

void LocalIdealDeployment::Invoke(Region origin, const std::string& function,
                                  std::vector<Value> inputs, std::function<void(Value)> done) {
  const AnalyzedFunction* fn = registry_.Find(function);
  assert(fn != nullptr && "function not registered");
  sim_->Schedule(config_.lambda_invoke + config_.blob_load,
                 [this, fn, origin, inputs = std::move(inputs), done = std::move(done)]() mutable {
                   const ExecEnv env{sim_->NextId(), &externals_};
                   const ExecResult exec = interpreter_.Execute(fn->original, inputs,
                                                                &store(origin),
                                                                config_.exec_limits, &env);
                   assert(exec.ok() && "ideal execution failed");
                   sim_->Schedule(exec.elapsed, [done = std::move(done),
                                                 result = exec.return_value]() mutable {
                     done(std::move(result));
                   });
                 });
}

const AnalyzedFunction& LocalIdealDeployment::RegisterFunction(const FunctionDef& fn) {
  return registry_.Register(fn);
}

void LocalIdealDeployment::Seed(const Key& key, const Value& value) {
  for (auto& [region, store] : stores_) {
    (void)region;
    store->Seed(key, value);
  }
}

VersionedStore& LocalIdealDeployment::store(Region region) {
  const auto it = stores_.find(region);
  assert(it != stores_.end() && "no local store in this region");
  return *it->second;
}

}  // namespace radical
