#include "src/radical/session.h"

#include <utility>
#include <vector>

#include "src/radical/deployment.h"

namespace radical {

struct Session::Impl : std::enable_shared_from_this<Session::Impl> {
  // One submitted-but-not-finalized request, kept whole so a failover can
  // replay it against another runtime.
  struct Pending {
    Request request;         // Copy of the original submission.
    RequestOptions options;  // As resolved by Submit (session fields set).
    OutcomeFn done;          // The caller's callback; consumed by the final.
    ExecutionId exec_id = 0;  // Assigned by the runtime (0 = not yet).
    bool preview_seen = false;
  };

  RadicalDeployment* deployment = nullptr;
  Region region = Region::kVA;
  std::shared_ptr<SessionCtx> ctx;
  std::map<uint64_t, Pending> pending;  // seq -> in-flight request.
  uint64_t next_seq = 1;
  uint64_t failovers = 0;

  void Bind(Region r) {
    region = r;
    std::weak_ptr<Impl> weak = weak_from_this();
    deployment->runtime(r).OnCrash([weak] {
      if (auto self = weak.lock()) {
        self->HandleCrash();
      }
    });
  }

  // Wraps the caller's callback for request `seq`: previews pass through
  // (the entry stays pending), the first final consumes the entry — and only
  // the first, so a replay racing a pre-crash duplicate stays exactly-once.
  OutcomeFn Wrap(uint64_t seq) {
    std::weak_ptr<Impl> weak = weak_from_this();
    return [weak, seq](Outcome outcome) {
      auto self = weak.lock();
      if (self == nullptr) {
        return;  // Every Session handle is gone; nobody to answer.
      }
      auto it = self->pending.find(seq);
      if (it == self->pending.end()) {
        return;  // Final already delivered.
      }
      if (outcome.preview()) {
        it->second.preview_seen = true;
        it->second.done(std::move(outcome));
        return;
      }
      OutcomeFn done = std::move(it->second.done);
      self->pending.erase(it);
      done(std::move(outcome));
    };
  }

  void SubmitSeq(uint64_t seq) {
    Pending& entry = pending.at(seq);
    deployment->runtime(region).Submit(entry.request, entry.options, Wrap(seq));
  }

  void HandleCrash() {
    ++failovers;
    // Re-bind to the next alive runtime, cycling through the deployment's
    // regions from the one after the crashed PoP (deterministic, and spreads
    // sessions of different homes across survivors). No survivor = stay put;
    // new submissions complete kRejected until someone recovers.
    const std::vector<Region>& regions = deployment->regions();
    size_t start = 0;
    for (size_t i = 0; i < regions.size(); ++i) {
      if (regions[i] == region) {
        start = i;
        break;
      }
    }
    Region target = region;
    for (size_t step = 1; step <= regions.size(); ++step) {
      const Region candidate = regions[(start + step) % regions.size()];
      if (deployment->runtime(candidate).alive()) {
        target = candidate;
        break;
      }
    }
    Bind(target);  // Re-arms the crash listener even when staying put.
    if (!deployment->runtime(target).alive()) {
      return;
    }
    deployment->runtime(target).counters().Increment("session_failover_in");
    // Replay every unacked request on the new runtime as a *direct*
    // execution reusing the original ExecutionId: the primary is
    // authoritative for whether that execution already ran (intent records,
    // reply caches), so a request answered just before the crash resolves
    // from the cache and one that never arrived executes fresh — exactly
    // once either way. The session's floor travels in ctx, so monotonic
    // reads hold against the new (possibly colder) cache.
    for (auto& [seq, entry] : pending) {
      entry.options.consistency = ConsistencyMode::kDirect;
      entry.options.replay_exec_id = entry.exec_id;
      SubmitSeq(seq);
    }
  }
};

Session::Session(RadicalDeployment* deployment, Region region, uint64_t id)
    : impl_(std::make_shared<Impl>()) {
  impl_->deployment = deployment;
  impl_->ctx = std::make_shared<SessionCtx>();
  impl_->ctx->id = id;
  std::weak_ptr<Impl> weak = impl_;
  impl_->ctx->on_exec_assigned = [weak](uint64_t seq, ExecutionId exec_id) {
    if (auto self = weak.lock()) {
      auto it = self->pending.find(seq);
      if (it != self->pending.end()) {
        it->second.exec_id = exec_id;
      }
    }
  };
  impl_->Bind(region);
}

void Session::Submit(Request request, OutcomeFn done) {
  Submit(std::move(request), RequestOptions(), std::move(done));
}

void Session::Submit(Request request, RequestOptions options, OutcomeFn done) {
  if (options.consistency == ConsistencyMode::kLinearizable) {
    options.consistency = ConsistencyMode::kSession;
  }
  options.session = impl_->ctx;
  const uint64_t seq = impl_->next_seq++;
  options.session_seq = seq;
  Impl::Pending entry;
  entry.request = std::move(request);
  entry.options = std::move(options);
  entry.done = std::move(done);
  impl_->pending.emplace(seq, std::move(entry));
  impl_->SubmitSeq(seq);
}

uint64_t Session::id() const { return impl_->ctx->id; }
Region Session::region() const { return impl_->region; }
uint64_t Session::failovers() const { return impl_->failovers; }
size_t Session::unacked() const { return impl_->pending.size(); }
uint64_t Session::previews() const { return impl_->ctx->previews; }
uint64_t Session::stale_upgrades() const { return impl_->ctx->stale_upgrades; }

Version Session::FloorOf(const Key& key) const {
  const auto it = impl_->ctx->floor.find(key);
  return it == impl_->ctx->floor.end() ? 0 : it->second;
}

}  // namespace radical
