#include "src/radical/client.h"

#include "src/radical/runtime.h"

namespace radical {

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case RequestStatus::kPreview:
      return "preview";
    case RequestStatus::kAborted:
      return "aborted";
  }
  return "unknown";
}

void Client::Submit(Request request, OutcomeFn done) {
  Submit(std::move(request), RequestOptions(), std::move(done));
}

void Client::Submit(Request request, RequestOptions options, OutcomeFn done) {
  runtime_->Submit(std::move(request), std::move(options), std::move(done));
}

void Client::Submit(Request request, DoneFn done) {
  Submit(std::move(request), RequestOptions(), std::move(done));
}

void Client::Submit(Request request, RequestOptions options, DoneFn done) {
  // Wrapper over the canonical OutcomeFn path. Previews are filtered: the
  // legacy overloads predate them, and a second Value-only callback would be
  // indistinguishable from the final.
  Submit(std::move(request), std::move(options), [done = std::move(done)](Outcome outcome) {
    if (outcome.preview()) return;
    done(std::move(outcome.result));
  });
}

}  // namespace radical
