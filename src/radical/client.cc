#include "src/radical/client.h"

#include "src/radical/runtime.h"

namespace radical {

void Client::Submit(Request request, DoneFn done) {
  Submit(std::move(request), RequestOptions(), std::move(done));
}

void Client::Submit(Request request, RequestOptions options, DoneFn done) {
  runtime_->Submit(std::move(request), std::move(options), std::move(done));
}

}  // namespace radical
