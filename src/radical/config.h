// RadicalConfig: deployment-wide tuning knobs.
//
// Defaults reproduce the paper's AWS deployment (§5.2): ~12 ms Lambda
// invocation, ~2 ms to load the WASM blob, DynamoDB-speed storage in every
// location (the paper deliberately uses DynamoDB for the caches too, to
// isolate the effect of the architecture), and the LVI server colocated with
// the primary in Virginia.

#ifndef RADICAL_SRC_RADICAL_CONFIG_H_
#define RADICAL_SRC_RADICAL_CONFIG_H_

#include "src/func/interpreter.h"
#include "src/kv/cache_store.h"
#include "src/kv/versioned_store.h"
#include "src/lvi/lvi_server.h"

namespace radical {

// Client-side request-lifecycle policy: per-attempt timeouts, exponential
// backoff, and a bounded retry budget for LVI and direct requests. Retries
// are safe because exec_ids make the server side idempotent — a retried
// request replays the cached response, re-attaches to the in-flight
// pipeline, or hits the existing intent/idempotency tables; it never
// re-locks or re-executes (see DESIGN.md, "Failure handling & retries").
struct RetryPolicy {
  bool enabled = true;
  // Initial per-attempt timeout. Covers the worst WAN round trip in the
  // paper's matrix (~151 ms) plus server-side queueing with a wide margin,
  // so the loss-free benchmarks never retry spuriously.
  SimDuration request_timeout = Millis(1200);
  // Timeout multiplier per retry, capped at max_backoff.
  double backoff = 2.0;
  SimDuration max_backoff = Seconds(5);
  // Attempts on the LVI path (1 = no retry). Exhausting the budget degrades
  // the request to InvokeDirect, which keeps retrying with capped backoff
  // until the server answers — every Invoke eventually calls done once the
  // near-storage location is reachable again.
  int max_lvi_attempts = 4;
  // Two-RTT ablation only: followup retransmission budget. Exhausting it
  // answers the client immediately — the write intent already guarantees
  // the writes reach the primary via deterministic re-execution.
  SimDuration followup_ack_timeout = Millis(1200);
  int max_followup_attempts = 4;

  // --- Retry budget (overload control) -----------------------------------
  // Token bucket shared by every request on a Runtime, so a saturation event
  // cannot turn into a retry storm that amplifies itself: each retry spends
  // tokens, tokens refill with virtual time, and an empty bucket completes
  // the request with Status::kRejected instead of retrying. The bucket is
  // deployment-wide state, so it always reads these fields from
  // RadicalConfig::retry — a per-request RetryPolicy override does not get
  // its own bucket. 0 = no budget (the historical unbounded behaviour, and
  // the default).
  double retry_budget = 0.0;
  // Tokens regained per second of virtual time (up to retry_budget).
  double retry_budget_refill_per_sec = 1.0;
  // Tokens one retry costs after an explicit backpressure reply (kOverloaded
  // / kShed), vs. 1.0 for a timeout retry: when the server *says* it is
  // overloaded, retrying into it is what melts it down, so backpressure
  // drains the budget faster than silence does.
  double reject_retry_cost = 2.0;
};

struct RadicalConfig {
  // §5.5 latency components (1) and (2): function instantiation and loading
  // the WebAssembly blob from disk.
  SimDuration lambda_invoke = Millis(12);
  SimDuration blob_load = Millis(2);
  // §5.5 component (3): invoking the extracted f^rw in the WASM runtime
  // (fixed overhead on top of f^rw's own dependent reads). This cost is on
  // the critical path — f^rw runs strictly before f (§3.3, §7).
  SimDuration frw_invoke_overhead = Millis(3);

  VersionedStoreOptions primary_store;
  CacheStoreOptions cache;
  LviServerOptions server;
  ExecLimits exec_limits;
  RetryPolicy retry;

  // --- Ablation switches (bench/ablation_design) ----------------------------
  // Off: the function runs only after the LVI response validates, i.e. no
  // overlap between coordination and execution.
  bool speculation_enabled = true;
  // Off: the runtime ships its writes and waits for the server's ack before
  // answering the client — the "second round trip" the write-intent
  // mechanism exists to avoid (§1).
  bool single_request_commit = true;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_CONFIG_H_
