// Deployments: wiring for a whole Radical system and for the baselines the
// evaluation compares against.
//
//  - RadicalDeployment: primary store + LVI server in the near-storage
//    region, a Runtime (with its cache) per deployment location (§3.1).
//  - PrimaryBaselineDeployment: the paper's baseline — every request is sent
//    to the application copy running alongside the primary (§5.3).
//  - LocalIdealDeployment: the "red line" — each location executes against
//    local, *inconsistent* storage; the best possible latency and a bound no
//    consistent system can beat (§2, §5.3).
//
// All three expose the same AppService interface so workloads and load
// generators are deployment-agnostic.

#ifndef RADICAL_SRC_RADICAL_DEPLOYMENT_H_
#define RADICAL_SRC_RADICAL_DEPLOYMENT_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/radical/client.h"
#include "src/radical/runtime.h"
#include "src/radical/session.h"
#include "src/sim/region.h"

namespace radical {

// Region -> simulation-partition assignment for a partitioned run
// (src/sim/parallel.h). The natural cut follows the deployment geometry:
// each deployment location (its runtime, cache, and clients) is a partition
// of its own, and the near-storage region — primary store, LVI server, and
// the colocated runtime — is pinned to partition 0, so every LVI
// validation/admission crosses exactly one mailbox hop whose latency the
// WAN model already bounds (net::LookaheadBound). Regions that are not
// deployment locations ride with the primary on partition 0.
class PartitionMap {
 public:
  // Single-partition map: every region on partition 0 (the plain
  // single-threaded configuration).
  PartitionMap() { partition_.fill(0); }

  // One partition per deployment location, primary region first: `primary`
  // -> 0, then each region of `regions` (paper order) that is not the
  // primary -> 1, 2, ... Unlisted regions -> 0.
  static PartitionMap PerRegion(const std::vector<Region>& regions,
                                Region primary = kPrimaryRegion);

  int PartitionOf(Region r) const { return partition_[static_cast<size_t>(r)]; }
  int num_partitions() const { return num_partitions_; }

 private:
  std::array<int, kNumRegions> partition_{};
  int num_partitions_ = 1;
};

class AppService {
 public:
  virtual ~AppService() = default;

  // Invokes `function` on behalf of a client colocated with `origin`.
  virtual void Invoke(Region origin, const std::string& function, std::vector<Value> inputs,
                      std::function<void(Value)> done) = 0;

  // Registers a function with the deployment (runs the static analyzer).
  virtual const AnalyzedFunction& RegisterFunction(const FunctionDef& fn) = 0;

  // Seeds an item into the deployment's authoritative storage.
  virtual void Seed(const Key& key, const Value& value) = 0;

  // External services reachable from this deployment's functions (§3.5).
  virtual ExternalServiceRegistry& externals() = 0;
};

class RadicalDeployment : public AppService {
 public:
  // `replicated_locks > 0` switches the LVI server to the §5.6 configuration
  // with that many Raft nodes holding the locks. By default the locks live
  // in one Raft group; `config.server.replicated_shards > 1` runs that many
  // independent groups (multi-Raft), one per key-range shard, and shards the
  // server's hot path to match.
  //
  // Environment overrides RADICAL_SHARDS / RADICAL_BATCH_WINDOW_US /
  // RADICAL_REPLICATED_SHARDS set the server's shard count, admission batch
  // window and replicated lock-group count when the config leaves them at
  // their defaults — tools/check.sh (CHECK_SHARD_MATRIX=1, CHECK_REPLICATED=1)
  // uses this to run the whole test suite against those paths without
  // touching any call site.
  RadicalDeployment(Simulator* sim, Network* network, RadicalConfig config,
                    std::vector<Region> regions, int replicated_locks = 0);
  ~RadicalDeployment() override;

  void Invoke(Region origin, const std::string& function, std::vector<Value> inputs,
              std::function<void(Value)> done) override;
  const AnalyzedFunction& RegisterFunction(const FunctionDef& fn) override;
  void Seed(const Key& key, const Value& value) override;

  // Copies every primary item (value and version) into every cache: the
  // steady state after the gradual bootstrap of §3.2.
  void WarmCaches();

  // Routes every runtime's and the server's protocol-leg spans into
  // `spans` (nullptr detaches). The collector must outlive the deployment's
  // remaining requests.
  void AttachSpans(obs::SpanCollector* spans);

  Runtime& runtime(Region region);
  // The submission facade for clients colocated with `region` — the
  // preferred entry point (cheap, copyable; see src/radical/client.h).
  Client client(Region region) { return Client(&runtime(region)); }
  // Opens a session bound to `region`'s runtime: preview+final callbacks,
  // read-your-writes / monotonic reads, and transparent failover to another
  // deployment location when that runtime crashes (src/radical/session.h).
  Session OpenSession(Region region) {
    return Session(this, region, AllocateSessionId());
  }
  // Session ids come from a plain deployment counter — NOT sim->NextId(),
  // whose allocation order is part of the pinned deterministic schedule.
  uint64_t AllocateSessionId() { return ++next_session_id_; }
  const std::vector<Region>& regions() const { return regions_; }
  // PoP failure injection: Crash() orphans the region's in-flight requests
  // and wipes its cache; sessions bound there fail over immediately.
  void CrashRuntime(Region region) { runtime(region).Crash(); }
  void RecoverRuntime(Region region) { runtime(region).Recover(); }
  LviServer& server() { return *server_; }
  // The LVI server's fabric address, shared by every runtime; its
  // extra_hop_delay models the intra-DC hop to the server's EC2 instance.
  const net::Endpoint& server_endpoint() const { return server_endpoint_; }
  VersionedStore& primary() { return primary_; }
  FunctionRegistry& registry() { return registry_; }
  ExternalServiceRegistry& externals() override { return externals_; }
  const RadicalConfig& config() const { return config_; }
  LocalLockService* local_locks() { return local_locks_.get(); }
  ShardedLockService* sharded_locks() { return sharded_locks_.get(); }
  ReplicatedLockService* replicated_locks() { return replicated_locks_.get(); }

 private:
  Simulator* sim_;
  RadicalConfig config_;
  Analyzer analyzer_;
  Interpreter interpreter_;
  FunctionRegistry registry_;
  ExternalServiceRegistry externals_;
  VersionedStore primary_;
  std::unique_ptr<LocalLockService> local_locks_;
  std::unique_ptr<ShardedLockService> sharded_locks_;
  std::unique_ptr<ReplicatedLockService> replicated_locks_;
  std::unique_ptr<LviServer> server_;
  net::Endpoint server_endpoint_;
  // Sharded server: one fabric channel per shard (empty otherwise).
  std::vector<net::Endpoint> shard_endpoints_;
  std::map<Region, std::unique_ptr<Runtime>> runtimes_;
  std::vector<Region> regions_;
  uint64_t next_session_id_ = 0;
  // RADICAL_FORCE_SESSIONS=1 (tools/check.sh CHECK_SESSION=1): route every
  // Invoke through a per-region ambient session, so the whole tier-1 suite
  // exercises the session path without touching any call site. Previews are
  // filtered — Invoke's contract is one callback with the final result.
  bool force_sessions_ = false;
  std::map<Region, Session> ambient_sessions_;
};

class PrimaryBaselineDeployment : public AppService {
 public:
  PrimaryBaselineDeployment(Simulator* sim, Network* network, RadicalConfig config);

  void Invoke(Region origin, const std::string& function, std::vector<Value> inputs,
              std::function<void(Value)> done) override;
  const AnalyzedFunction& RegisterFunction(const FunctionDef& fn) override;
  void Seed(const Key& key, const Value& value) override;

  VersionedStore& primary() { return primary_; }
  LviServer& server() { return *server_; }
  ExternalServiceRegistry& externals() override { return externals_; }

 private:
  Simulator* sim_;
  Network* network_;
  RadicalConfig config_;
  Analyzer analyzer_;
  Interpreter interpreter_;
  FunctionRegistry registry_;
  ExternalServiceRegistry externals_;
  VersionedStore primary_;
  std::unique_ptr<LocalLockService> locks_;
  std::unique_ptr<LviServer> server_;
  // Reusable codec scratch for measuring request/response wire sizes.
  WireScratch wire_scratch_;
};

class LocalIdealDeployment : public AppService {
 public:
  LocalIdealDeployment(Simulator* sim, RadicalConfig config, std::vector<Region> regions);

  void Invoke(Region origin, const std::string& function, std::vector<Value> inputs,
              std::function<void(Value)> done) override;
  const AnalyzedFunction& RegisterFunction(const FunctionDef& fn) override;
  // Seeds every region's local (divergent-by-design) store.
  void Seed(const Key& key, const Value& value) override;

  VersionedStore& store(Region region);
  ExternalServiceRegistry& externals() override { return externals_; }

 private:
  Simulator* sim_;
  RadicalConfig config_;
  Analyzer analyzer_;
  Interpreter interpreter_;
  FunctionRegistry registry_;
  ExternalServiceRegistry externals_;
  std::map<Region, std::unique_ptr<VersionedStore>> stores_;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_DEPLOYMENT_H_
