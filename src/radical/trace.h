// Request tracing: per-request timelines through the Radical runtime.
//
// §5.5 decomposes a request's total latency into five components: (1)
// function instantiation, (2) loading the WASM blob, (3) executing the
// extracted f^rw, (4) max(function execution, LVI round trip), and (5) the
// near-storage execution on validation failure. The runtime stamps each
// phase boundary into a RequestTrace; the TraceCollector aggregates them so
// benches (bench/latency_breakdown) and tests can attribute where time goes
// — the same analysis Figure 6's discussion performs.

#ifndef RADICAL_SRC_RADICAL_TRACE_H_
#define RADICAL_SRC_RADICAL_TRACE_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/sim/region.h"

namespace radical {

struct RequestTrace {
  ExecutionId exec_id = 0;
  std::string function;
  Region region = Region::kVA;

  // Phase boundaries (virtual time). Zero means "did not happen".
  SimTime invoked = 0;        // Client called Invoke.
  SimTime frw_started = 0;    // Instantiation + blob load done; f^rw begins.
  SimTime lvi_sent = 0;       // f^rw done; LVI request leaves (speculation
                              // starts at the same instant when it runs).
  SimTime spec_finished = 0;  // Speculative execution completed.
  SimTime response_received = 0;  // LVI response (or direct response) back.
  SimTime replied = 0;        // Client answered.

  // Outcome flags.
  bool speculated = false;
  bool validated = false;
  bool direct = false;  // Unanalyzable/f^rw-failure fallback path.
  // Retry machinery (RetryPolicy): attempts beyond the first, across the
  // LVI and direct paths, plus whether the request exhausted its LVI budget
  // and degraded to InvokeDirect.
  int retries = 0;
  bool fallback_direct = false;

  // --- §5.5 component durations ------------------------------------------
  // (1)+(2) Instantiation and blob load.
  SimDuration Instantiation() const { return frw_started - invoked; }
  // (3) f^rw execution (plus version gathering).
  SimDuration FrwTime() const { return lvi_sent - frw_started; }
  // (4) The overlap window: from LVI send until both the execution and the
  // response are in.
  SimDuration OverlapWindow() const {
    const SimTime end = std::max(spec_finished, response_received);
    return end - lvi_sent;
  }
  // Time spent waiting on the LVI response *after* the speculative execution
  // finished (nonzero when the round trip, not execution, is the
  // bottleneck — the social-media-in-JP effect, §5.4).
  SimDuration LviStall() const {
    if (!speculated || response_received == 0 || spec_finished == 0) {
      return 0;
    }
    return std::max<SimDuration>(0, response_received - spec_finished);
  }
  // (5) Everything after the response (local completion, cache installs; on
  // the failure path this is just the reply since the backup already ran).
  SimDuration Completion() const { return replied - std::max(response_received, spec_finished); }
  SimDuration Total() const { return replied - invoked; }
};

// Collects completed traces; aggregation helpers slice per function.
class TraceCollector {
 public:
  void Record(RequestTrace trace) { traces_.push_back(std::move(trace)); }

  const std::vector<RequestTrace>& traces() const { return traces_; }
  size_t size() const { return traces_.size(); }
  void Clear() { traces_.clear(); }

  std::vector<const RequestTrace*> ForFunction(const std::string& function) const;

  // Mean duration of a component over a function's traces (ms).
  double MeanMs(const std::string& function,
                SimDuration (RequestTrace::*component)() const) const;

  // Fraction of a function's requests where the LVI response was the
  // bottleneck (LviStall > 0 among speculated+validated requests).
  double LviBoundFraction(const std::string& function) const;

 private:
  std::vector<RequestTrace> traces_;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_TRACE_H_
