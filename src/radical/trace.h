// Request tracing: per-request timelines through the Radical runtime.
//
// §5.5 decomposes a request's total latency into five components: (1)
// function instantiation, (2) loading the WASM blob, (3) executing the
// extracted f^rw, (4) max(function execution, LVI round trip), and (5) the
// near-storage execution on validation failure. The runtime stamps each
// phase boundary into a RequestTrace; the TraceCollector aggregates them so
// benches (bench/latency_breakdown) and tests can attribute where time goes
// — the same analysis Figure 6's discussion performs.
//
// Each network attempt (every LVI try, direct try, and followup
// transmission, including retries) is additionally recorded as a
// RequestAttempt, and AppendSpans() turns a completed trace into
// client-track spans for the Chrome trace-event export (src/obs/span.h).

#ifndef RADICAL_SRC_RADICAL_TRACE_H_
#define RADICAL_SRC_RADICAL_TRACE_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/obs/span.h"
#include "src/sim/region.h"

namespace radical {

// Which protocol leg a network attempt belongs to.
enum class AttemptPath { kLvi, kDirect, kFollowup };

// Cap on RequestAttempt records stored per trace. A request stuck behind a
// long partition retries its direct path indefinitely; without a cap its
// trace grew one record per retry for the life of the outage. When the cap
// is hit the oldest *resolved* record is evicted (open attempts are never
// evicted — ResolveAttempt still needs them) and the trace's attempts_total
// / attempts_dropped counters keep the full tally.
inline constexpr size_t kMaxStoredAttempts = 32;

const char* AttemptPathName(AttemptPath path);

// One transmission on the wire: the original send or any retry, on any path.
struct RequestAttempt {
  AttemptPath path = AttemptPath::kLvi;
  int number = 1;         // 1-based attempt number within its path.
  SimTime sent = 0;       // When the attempt left the runtime.
  SimTime resolved = 0;   // When it came back (response/ack/timeout); 0 =
                          // superseded without an own resolution event.
  std::string outcome;    // "response", "timeout", "ack", "nack", "gave_up",
                          // "fast_fail", ... (empty while open).
};

struct RequestTrace {
  ExecutionId exec_id = 0;
  std::string function;
  Region region = Region::kVA;

  // Phase boundaries (virtual time). Zero means "did not happen". Phases are
  // first-wins: a retry must never move a boundary that is already stamped
  // (stamp through StampOnce), so the timeline stays monotonic — retries get
  // their own RequestAttempt entries instead.
  SimTime invoked = 0;        // Client called Invoke.
  SimTime frw_started = 0;    // Instantiation + blob load done; f^rw begins.
  SimTime lvi_sent = 0;       // f^rw done; LVI request leaves (speculation
                              // starts at the same instant when it runs).
  SimTime spec_finished = 0;  // Speculative execution completed.
  SimTime preview_delivered = 0;  // Outcome{kPreview} fired (preview modes
                                  // only; == spec_finished when stamped).
  SimTime response_received = 0;  // LVI response (or direct response) back.
  SimTime replied = 0;        // Client answered (the final outcome).

  // Stamps `now` into `*slot` only if the slot is still zero; retries reuse
  // this so the first occurrence of a phase wins.
  static void StampOnce(SimTime* slot, SimTime now) {
    if (*slot == 0) {
      *slot = now;
    }
  }

  // Outcome flags.
  bool speculated = false;
  bool validated = false;
  bool direct = false;  // Unanalyzable/f^rw-failure fallback path.
  // Retry machinery (RetryPolicy): attempts beyond the first, across the
  // LVI and direct paths, plus whether the request exhausted its LVI budget
  // and degraded to InvokeDirect.
  int retries = 0;
  bool fallback_direct = false;

  // Every transmission, in send order (first LVI try, its retries, a direct
  // fallback, followup (re)transmissions, ...), capped at
  // kMaxStoredAttempts records; attempts_total always counts every
  // transmission and attempts_dropped the records the cap evicted, so
  // attempts.size() + attempts_dropped == attempts_total.
  std::vector<RequestAttempt> attempts;
  uint64_t attempts_total = 0;
  uint64_t attempts_dropped = 0;

  // True when every nonzero phase boundary is in timeline order. Traces
  // recorded by the runtime must satisfy this even across retries (the
  // regression tests assert it).
  bool PhasesMonotonic() const {
    SimTime last = 0;
    for (const SimTime t : {invoked, frw_started, lvi_sent}) {
      if (t == 0) {
        continue;
      }
      if (t < last) {
        return false;
      }
      last = t;
    }
    // Speculation and the response overlap — each only has to be after the
    // send, not ordered against the other.
    if (spec_finished != 0 && spec_finished < last) {
      return false;
    }
    if (response_received != 0 && response_received < last) {
      return false;
    }
    const SimTime end = std::max({last, spec_finished, response_received});
    return replied == 0 || replied >= end;
  }

  // --- §5.5 component durations ------------------------------------------
  // Each component runs from the previous phase boundary to the next, with
  // unstamped boundaries collapsing onto the previous anchor (a direct-path
  // request has no lvi_sent, for example). This keeps every component
  // non-negative on every path and makes them sum exactly to Total().

  // Start of f^rw; == invoked when f^rw never started (pure direct path).
  SimTime FrwStartAnchor() const { return frw_started != 0 ? frw_started : invoked; }
  // When the request left the runtime; == the f^rw anchor on direct paths
  // (the direct send shows up in `attempts`, not as a phase).
  SimTime DepartAnchor() const { return lvi_sent != 0 ? lvi_sent : FrwStartAnchor(); }
  // When both the execution and the response were in.
  SimTime ResponseAnchor() const {
    const SimTime end = std::max(spec_finished, response_received);
    return end != 0 ? end : DepartAnchor();
  }

  // (1)+(2) Instantiation and blob load.
  SimDuration Instantiation() const { return FrwStartAnchor() - invoked; }
  // (3) f^rw execution (plus version gathering); 0 on direct paths.
  SimDuration FrwTime() const { return DepartAnchor() - FrwStartAnchor(); }
  // (4) The overlap window: from LVI send until both the execution and the
  // response are in.
  SimDuration OverlapWindow() const { return ResponseAnchor() - DepartAnchor(); }
  // Time spent waiting on the LVI response *after* the speculative execution
  // finished (nonzero when the round trip, not execution, is the
  // bottleneck — the social-media-in-JP effect, §5.4).
  SimDuration LviStall() const {
    if (!speculated || response_received == 0 || spec_finished == 0) {
      return 0;
    }
    return std::max<SimDuration>(0, response_received - spec_finished);
  }
  // (5) Everything after the response (local completion, cache installs; on
  // the failure path this is just the reply since the backup already ran).
  SimDuration Completion() const { return replied - ResponseAnchor(); }
  SimDuration Total() const { return replied - invoked; }
};

// Appends one client-track span per phase of a completed trace — the §5.5
// components end to end, plus one span per RequestAttempt — to `spans`
// (lane = exec_id). No-op when `spans` is null.
void AppendSpans(const RequestTrace& trace, obs::SpanCollector* spans);

// Collects completed traces; aggregation helpers slice per function.
class TraceCollector {
 public:
  void Record(RequestTrace trace) { traces_.push_back(std::move(trace)); }

  const std::vector<RequestTrace>& traces() const { return traces_; }
  size_t size() const { return traces_.size(); }
  void Clear() { traces_.clear(); }

  std::vector<const RequestTrace*> ForFunction(const std::string& function) const;

  // Mean duration of a component over a function's traces (ms).
  double MeanMs(const std::string& function,
                SimDuration (RequestTrace::*component)() const) const;

  // Fraction of a function's requests where the LVI response was the
  // bottleneck (LviStall > 0 among speculated+validated requests).
  double LviBoundFraction(const std::string& function) const;

 private:
  std::vector<RequestTrace> traces_;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_TRACE_H_
