// Runtime: Radical's near-user component (§3.1, Figure 2).
//
// For each client request the runtime (1) runs f^rw against the local cache
// to derive the read/write set, then simultaneously (2a) speculatively
// executes f against the cache through a write buffer and (2b) sends the LVI
// request — with the cache's version per item — to the near-storage
// location. The client is answered when both the speculative execution and
// the LVI response have arrived: with the speculative result if validation
// succeeded (the write followup ships the buffered writes *after* the
// reply), or with the backup execution's result if it failed (in which case
// the response's fresh items repair the cache).
//
// Cache misses put version -1 in the request and skip speculation;
// unanalyzable functions skip the protocol entirely and execute in the
// near-storage location (§3.3).

#ifndef RADICAL_SRC_RADICAL_RUNTIME_H_
#define RADICAL_SRC_RADICAL_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/registry.h"
#include "src/common/stats.h"
#include "src/kv/cache_store.h"
#include "src/lvi/codec.h"
#include "src/lvi/lvi_server.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/radical/client.h"
#include "src/radical/config.h"
#include "src/radical/trace.h"

namespace radical {

class Runtime {
 public:
  using DoneFn = std::function<void(Value result)>;
  using OutcomeFn = std::function<void(Outcome outcome)>;

  // `server` lives in `server_region` (the near-storage location); all
  // pointers must outlive the runtime. `server_endpoint` is the server's
  // fabric address (shared across runtimes by the deployment); when invalid
  // (default), the runtime registers its own, carrying the intra-DC hop
  // (kServerHopRtt / 2) as the endpoint's extra one-way delay.
  Runtime(Simulator* sim, Network* network, Region region, Region server_region,
          LviServer* server, const FunctionRegistry* registry, const Interpreter* interpreter,
          const RadicalConfig& config, ExternalServiceRegistry* externals = nullptr,
          net::Endpoint server_endpoint = net::Endpoint());

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Submits a request on behalf of a colocated client with per-request
  // options (retry override, consistency mode, trace opt-out, shard hint,
  // session — see RequestOptions in client.h). `done` fires (as a simulator
  // event) when the result is released to the client, and — under
  // kPreviewThenFinal/kSession — once earlier with Outcome{kPreview}. Prefer
  // the radical::Client facade over calling this directly. (The legacy
  // DoneFn shape lives on only as Client's deprecated wrapper overloads.)
  void Submit(Request request, RequestOptions options, OutcomeFn done);

  Region region() const { return region_; }
  CacheStore& cache() { return cache_; }
  // The runtime's counters live in the simulator's MetricsRegistry under
  // "runtime.<region>."; this is its registry slice (copyable view, returned
  // by value).
  obs::MetricsScope counters() const { return metrics_; }

  // This runtime's fabric address; tests target it with per-kind drop rules
  // (e.g. drop kWriteFollowup from this endpoint).
  const net::Endpoint& endpoint() const { return self_; }
  const net::Endpoint& server_endpoint() const { return server_endpoint_; }

  // Sharded server: one fabric channel per shard ("lvi-server.shard<i>").
  // When set, each request is sent on its home shard's channel — chosen by
  // ShardRouter over the first item's key, or by RequestOptions::shard_hint.
  // Channel choice is a locality optimization only: the server recomputes
  // the authoritative shard on arrival, so a stale or wrong route still
  // executes correctly. Empty (the default) = the single server_endpoint.
  void set_shard_endpoints(std::vector<net::Endpoint> endpoints);

  // Attaches a trace collector; every completed request records a
  // RequestTrace with its §5.5 phase boundaries. Pass nullptr to detach.
  void set_tracer(TraceCollector* tracer) { tracer_ = tracer; }

  // Attaches a span sink: every completed request appends its client-track
  // spans (§5.5 components plus one span per attempt; see AppendSpans).
  // Pass nullptr to detach. Must outlive the runtime while attached.
  void set_span_collector(obs::SpanCollector* spans) { spans_ = spans; }

  // --- PoP failure (SwiftCloud-style session failover) ---------------------
  // Crash() models the edge runtime's process dying: every in-flight request
  // is orphaned (its pending events fire into a dead epoch and drop), the
  // cache loses its contents, and new Submits complete kRejected until
  // Recover(). Crash listeners — registered by sessions bound here — fire
  // once per Crash(), after the epoch bump, so they can re-bind elsewhere.
  void Crash();
  void Recover();
  bool alive() const { return alive_; }
  void OnCrash(std::function<void()> listener) {
    crash_listeners_.push_back(std::move(listener));
  }

 private:
  struct RequestState {
    ExecutionId exec_id = 0;
    std::string function;
    std::vector<Value> inputs;
    // The single completion representation: every ending — preview, final,
    // rejection — flows through this one callback with its status.
    OutcomeFn done;
    // Consistency spectrum (kPreviewThenFinal / kSession).
    std::shared_ptr<SessionCtx> session;  // Null = sessionless.
    uint64_t session_seq = 0;
    ExecutionId replay_exec_id = 0;  // Failover replay: reuse this exec id.
    bool preview_requested = false;  // Mode asks for an early kPreview.
    bool preview_fired = false;      // ... and it was delivered.
    uint64_t born_epoch = 0;         // Runtime epoch_ at Submit time.
    // Per-request knobs, resolved from RequestOptions at Submit time.
    RetryPolicy retry;           // options.retry or the deployment default.
    bool trace_enabled = true;   // Record trace/spans on completion.
    int shard_hint = -1;         // Channel pin; -1 = route by key.
    SimTime deadline = 0;        // Absolute; 0 = none. Travels with every
                                 // request message (fabric + server shed
                                 // against it) and bounds client retries.
    net::Endpoint server_ep;     // The server channel this request uses.
    // Cached version per write key (sorted), for post-success installs.
    std::vector<Key> write_keys;
    std::vector<Version> write_base_versions;
    // Speculation.
    std::unique_ptr<WriteBuffer> buffer;
    bool speculated = false;       // A speculative execution was started.
    bool spec_finished = false;    // ... and its completion event fired.
    Value spec_result;
    // Rendezvous.
    bool response_received = false;
    bool completed = false;  // Client answered (or completion in progress).
    LviResponse response;
    RequestTrace trace;
    // --- Retry machinery (RetryPolicy) ------------------------------------
    // The request and its wire size are kept so a retry retransmits the
    // exact same bytes (same exec_id: the server side is idempotent).
    LviRequest lvi_request;
    size_t lvi_request_size = 0;
    DirectRequest direct_request;
    size_t direct_request_size = 0;
    int lvi_attempts = 0;
    int direct_attempts = 0;
    EventId timeout_event = kInvalidEventId;  // Current attempt's timeout.
    EventId deadline_event = kInvalidEventId;  // Deadline watchdog (if any).
    bool lvi_abandoned = false;  // LVI budget exhausted; degraded to direct.
    // Two-RTT ablation: the followup kept for retransmission, the result
    // held back until its ack, and the ack timer.
    WriteFollowup followup;
    size_t followup_size = 0;
    Value pending_result;
    int followup_attempts = 0;
    EventId followup_timer = kInvalidEventId;
    bool followup_done = false;
  };

  void SubmitImpl(Request request, RequestOptions options, OutcomeFn done);
  // True when `state` belongs to an epoch that died in a Crash(); such
  // requests silently stop (the session layer owns replaying them).
  bool DeadRequest(const RequestState& state) const {
    return !alive_ || state.born_epoch != epoch_;
  }
  // Raises the session's high-water mark to each fresh (key, version).
  static void AdvanceSessionFloor(const std::shared_ptr<RequestState>& state,
                                  const std::vector<FreshItem>& items);
  // Fires Outcome{kPreview} with the speculative result if the request asked
  // for one and the final is not already determined. At most once.
  void MaybeDeliverPreview(const std::shared_ptr<RequestState>& state);
  // Runs the LVI path once f^rw produced a read/write set.
  void StartLvi(std::shared_ptr<RequestState> state, RwSet rw);
  // Fallback: execute in the near-storage location (unanalyzable functions,
  // f^rw failure, or an exhausted LVI retry budget).
  void InvokeDirect(std::shared_ptr<RequestState> state);

  // --- Request-lifecycle timeouts and retries (RetryPolicy) ---------------
  // One LVI attempt: transmit (unless the server is deterministically
  // unreachable — fail fast) and arm the attempt's timeout.
  void SendLviAttempt(const std::shared_ptr<RequestState>& state);
  void OnLviResponse(const std::shared_ptr<RequestState>& state, LviResponse response);
  void OnLviTimeout(const std::shared_ptr<RequestState>& state);
  // One direct attempt; retries are unbounded (capped backoff) — direct is
  // the terminal fallback, so every Invoke answers once the server is back.
  void SendDirectAttempt(const std::shared_ptr<RequestState>& state);
  void OnDirectResponse(const std::shared_ptr<RequestState>& state, DirectResponse response);
  void OnDirectTimeout(const std::shared_ptr<RequestState>& state);
  // Two-RTT ablation: followup transmission with ack tracking.
  void SendFollowupAttempt(const std::shared_ptr<RequestState>& state);
  void OnFollowupAck(const std::shared_ptr<RequestState>& state, bool applied);
  void OnFollowupTimeout(const std::shared_ptr<RequestState>& state);
  void GiveUpFollowup(const std::shared_ptr<RequestState>& state);
  // --- Overload control ----------------------------------------------------
  // Reaction to an explicit backpressure reply (kOverloaded / kShed) on the
  // LVI or direct path: retry after max(server hint, backoff) if the retry
  // budget allows, else complete the request with RequestStatus::kRejected. Never
  // degrades to the direct path — that would move the load, not shed it.
  void OnBackpressure(const std::shared_ptr<RequestState>& state, AttemptPath path,
                      ResponseStatus status, SimDuration retry_after);
  // Takes `cost` tokens from the runtime-wide retry budget (config_.retry);
  // true = spend allowed. Always true when no budget is configured.
  bool SpendRetryBudget(double cost);
  // True when the request carries a deadline that has already passed.
  bool DeadlinePassed(const RequestState& state) const;
  // Terminal non-kOk completion: cancels timers, discards any speculation,
  // and answers the client with `status` (no result ever executed).
  void CompleteRejected(const std::shared_ptr<RequestState>& state, RequestStatus status,
                        SimDuration retry_after);
  // Exponential backoff: retry.request_timeout * backoff^(attempt-1),
  // capped at retry.max_backoff.
  static SimDuration AttemptTimeout(const RetryPolicy& retry, int attempt);
  void CancelTimeout(const std::shared_ptr<RequestState>& state);
  // Attempt bookkeeping for the trace: opens one RequestAttempt per
  // transmission; Resolve closes the newest open attempt on `path`.
  void RecordAttempt(const std::shared_ptr<RequestState>& state, AttemptPath path, int number);
  void ResolveAttempt(const std::shared_ptr<RequestState>& state, AttemptPath path,
                      const char* outcome);
  // Called when either the speculative execution or the LVI response is
  // ready; completes the request when both are.
  void TryComplete(const std::shared_ptr<RequestState>& state);
  void CompleteValidated(const std::shared_ptr<RequestState>& state);
  void CompleteFailed(const std::shared_ptr<RequestState>& state);
  // Installs speculative writes into the cache and ships the followup.
  void CommitSpeculation(const std::shared_ptr<RequestState>& state, Value result);
  void Reply(const std::shared_ptr<RequestState>& state, Value result);
  // Single exit point for every completion (ok or not): counters, trace,
  // spans, then whichever of done/outcome_done the caller registered.
  void FinishReply(const std::shared_ptr<RequestState>& state, Outcome outcome);
  // Message legs to/from the LVI server over the fabric: the WAN path plus
  // the intra-DC hop to the server's EC2 instance, which rides as the server
  // endpoint's extra_hop_delay (kServerHopRtt / 2 each way; Table 2's
  // lat_nu<->ns is the sum of both).
  // `server` is the request's channel (RequestState::server_ep) — the shared
  // server endpoint, or a per-shard channel under set_shard_endpoints.
  // `deadline` (0 = none) rides on the envelope: the fabric discards the
  // message outright when it would land past the deadline — the receiver
  // would only throw it away. Followups never carry one (writes must reach
  // the primary regardless of the client's patience).
  void SendToServer(const net::Endpoint& server, net::MessageKind kind, size_t bytes,
                    std::function<void()> deliver, SimTime deadline = 0);
  void SendFromServer(const net::Endpoint& server, net::MessageKind kind, size_t bytes,
                      std::function<void()> deliver, SimTime deadline = 0);
  // Picks the server channel for `state`: shard_hint if set, else the shard
  // owning `first_key` (nullptr = shard 0), else the single endpoint.
  void RouteToServer(RequestState* state, const Key* first_key) const;

  Simulator* sim_;
  Network* network_;
  const Region region_;
  const Region server_region_;
  net::Endpoint self_;
  net::Endpoint server_endpoint_;
  // Per-shard server channels (empty for unsharded deployments) and the
  // router mapping keys onto them; see set_shard_endpoints.
  std::vector<net::Endpoint> shard_endpoints_;
  ShardRouter shard_router_{1};
  LviServer* server_;
  const FunctionRegistry* registry_;
  const Interpreter* interpreter_;
  const RadicalConfig& config_;
  CacheStore cache_;
  // Per-runtime codec scratch: every outgoing message's exact wire size is
  // measured by encoding into this one reusable buffer (see WireScratch).
  WireScratch wire_scratch_;
  obs::MetricsScope metrics_;
  // Resolved once: end-to-end latency histogram, bumped on every Reply.
  obs::LatencyHistogram* latency_hist_ = nullptr;
  ExternalServiceRegistry* externals_;
  TraceCollector* tracer_ = nullptr;
  obs::SpanCollector* spans_ = nullptr;
  // Runtime-wide retry-budget token bucket (see RetryPolicy::retry_budget).
  // Lazily refilled with virtual time on each spend attempt; initialized on
  // first use so a no-budget deployment never touches it.
  bool retry_bucket_init_ = false;
  double retry_tokens_ = 0.0;
  SimTime retry_tokens_at_ = 0;
  // PoP crash modeling (mirrors LviServer's alive_/epoch_ pattern): events
  // scheduled before a Crash() carry the old epoch and drop on arrival.
  bool alive_ = true;
  uint64_t epoch_ = 0;
  std::vector<std::function<void()>> crash_listeners_;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_RUNTIME_H_
