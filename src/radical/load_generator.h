// LoadGenerator: closed-loop logical clients driving an AppService.
//
// Mirrors the paper's methodology (§5.2): logical client processes colocated
// with each deployment location issue requests drawn from an application's
// workload mix, one outstanding request per client, with a short think time
// between requests. Latency samples are collected per (region, function) so
// every figure's grouping (per app, per region, per function) can be derived
// from one run.

#ifndef RADICAL_SRC_RADICAL_LOAD_GENERATOR_H_
#define RADICAL_SRC_RADICAL_LOAD_GENERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/radical/deployment.h"

namespace radical {

// One request drawn from a workload.
struct RequestSpec {
  std::string function;
  std::vector<Value> inputs;
};

// Draws the next request (workloads are defined per application in
// src/apps/workload.h).
using WorkloadFn = std::function<RequestSpec(Rng& rng)>;

struct LoadGeneratorOptions {
  int clients_per_region = 10;
  // Requests each client issues before stopping.
  uint64_t requests_per_client = 200;
  // Think time between a response and the next request.
  SimDuration think_time = Millis(10);
  double think_jitter_frac = 0.5;  // Uniform +/- fraction of think_time.
};

class LoadGenerator {
 public:
  LoadGenerator(Simulator* sim, AppService* service, std::vector<Region> regions,
                WorkloadFn workload, LoadGeneratorOptions options = {});

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  // Starts every client; run the simulator afterwards. Completion can be
  // polled with finished().
  void Start();
  bool finished() const { return finished_clients_ == total_clients_; }

  // --- Results --------------------------------------------------------------
  // All samples, across regions and functions.
  LatencySampler Overall() const;
  // Samples for one region (all functions).
  LatencySampler ForRegion(Region region) const;
  // Samples for one function (all regions).
  LatencySampler ForFunction(const std::string& function) const;
  LatencySampler ForRegionFunction(Region region, const std::string& function) const;
  uint64_t total_requests() const { return total_requests_; }

 private:
  void RunClient(Region region, std::shared_ptr<Rng> rng, uint64_t remaining);

  Simulator* sim_;
  AppService* service_;
  std::vector<Region> regions_;
  WorkloadFn workload_;
  LoadGeneratorOptions options_;
  int total_clients_ = 0;
  int finished_clients_ = 0;
  uint64_t total_requests_ = 0;
  std::map<std::pair<Region, std::string>, LatencySampler> samples_;
};

}  // namespace radical

#endif  // RADICAL_SRC_RADICAL_LOAD_GENERATOR_H_
