// Social media demo: the paper's flagship application end to end.
//
// Seeds the Diaspora-style social network, then tells a small story across
// regions: a user in Tokyo posts, a follower in Dublin immediately sees the
// post on their timeline (linearizability across the globe), and timeline
// reads from every region show Radical's latency profile against what the
// primary-datacenter baseline would pay.
//
// Run: ./build/examples/social_media_demo

#include <cstdio>

#include "src/apps/apps.h"

using namespace radical;  // Example code; library code never does this.

namespace {

// Invokes synchronously (drives the simulator until the reply) and reports
// the client-observed latency.
Value Call(Simulator& sim, RadicalDeployment& radical, Region region,
           const std::string& function, std::vector<Value> inputs) {
  Value out;
  const SimTime start = sim.Now();
  bool done = false;
  radical.Invoke(region, function, std::move(inputs), [&](Value v) {
    out = std::move(v);
    std::printf("  [%s] %-16s -> %6.1f ms\n", RegionName(region), function.c_str(),
                ToMillis(sim.Now() - start));
    done = true;
  });
  sim.Run();
  if (!done) {
    std::printf("  [%s] %s: no reply!\n", RegionName(region), function.c_str());
  }
  return out;
}

}  // namespace

int main() {
  Simulator sim(7);
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalDeployment radical(&sim, &net, RadicalConfig{}, DeploymentRegions());

  const AppSpec app = MakeSocialApp();
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();

  std::printf("== Log in from everywhere (pbkdf2 check, 213 ms of compute) ==\n");
  for (const Region region : DeploymentRegions()) {
    const Value ok = Call(sim, radical, region, "social_login", {Value("u1"), Value("pwu1")});
    if (!(ok == Value(static_cast<int64_t>(1)))) {
      std::printf("  login unexpectedly failed!\n");
    }
  }
  std::printf("\nThe 213 ms of key derivation hides even Tokyo's 146 ms LVI round trip:\n");
  std::printf("every region pays roughly local latency for a strongly consistent login.\n\n");

  std::printf("== u1 (in Tokyo) posts; followers' timelines fan out ==\n");
  Call(sim, radical, Region::kJP, "social_post",
       {Value("u1"), Value("p-demo"), Value("radical is live!")});

  // u1's followers include u2 (seeded (1 + 13k + 1) % N ... u2 at k=0).
  std::printf("\n== u2 (in Dublin) reads their timeline right after ==\n");
  const Value timeline = Call(sim, radical, Region::kIE, "social_timeline", {Value("u2")});
  std::printf("  timeline tail: %s\n", timeline.ToString().c_str());
  bool found = false;
  if (timeline.is_list()) {
    for (const Value& entry : timeline.AsList()) {
      if (entry.is_string() && entry.AsString().find("radical is live!") != std::string::npos) {
        found = true;
      }
    }
  }
  std::printf("  post visible in Dublin: %s (linearizable: the post completed before the "
              "read began)\n\n",
              found ? "YES" : "NO");

  std::printf("== Timeline reads from every region (120 ms handler) ==\n");
  for (const Region region : DeploymentRegions()) {
    Call(sim, radical, region, "social_timeline", {Value("u5")});
  }
  std::printf("\nBaseline comparison: a primary-datacenter deployment pays the WAN round\n");
  std::printf("trip on every request (e.g. +146 ms from Tokyo); Radical hides it behind\n");
  std::printf("the handler's execution.\n\n");

  std::printf("== Protocol counters ==\n");
  std::printf("  LVI requests:          %llu\n",
              static_cast<unsigned long long>(radical.server().counters().Get("lvi_requests")));
  std::printf("  validation successes:  %llu\n",
              static_cast<unsigned long long>(radical.server().validations_succeeded()));
  std::printf("  validation failures:   %llu\n",
              static_cast<unsigned long long>(radical.server().validations_failed()));
  std::printf("  followups applied:     %llu\n",
              static_cast<unsigned long long>(
                  radical.server().counters().Get("followup_applied")));
  return 0;
}
