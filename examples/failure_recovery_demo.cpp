// Failure recovery demo: write intents and deterministic re-execution.
//
// Scenario 1 — a near-user location dies right after answering its client:
// the write followup never reaches the primary. The write intent's timer
// fires at the LVI server, the function re-executes deterministically
// against the primary (the still-held read locks guarantee it sees the same
// state), and the identical write lands exactly once.
//
// Scenario 2 — a near-user cache loses all its state: the next request
// misses, ships version -1, fails validation, and the response repopulates
// the cache; the request after that is back on the speculative fast path.
//
// Run: ./build/examples/failure_recovery_demo

#include <cstdio>

#include "src/apps/apps.h"

using namespace radical;  // Example code; library code never does this.

int main() {
  Simulator sim(2025);
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  config.server.intent_timeout = Millis(800);
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());

  radical.RegisterFunction(Fn("set_status", {"user", "status"}, {
      Write(Cat({C("status:"), In("user")}), In("status")),
      Compute(Millis(40)),
      Return(In("status")),
  }));
  radical.RegisterFunction(Fn("get_status", {"user"}, {
      Read("s", Cat({C("status:"), In("user")})),
      Compute(Millis(40)),
      Return(V("s")),
  }));
  radical.Seed("status:ada", Value("idle"));
  radical.WarmCaches();

  std::printf("== Scenario 1: the write followup is lost ==\n");
  // Kill every followup leaving San Francisco (the location "crashes" right
  // after replying to its client).
  net::DropRule lost_followup;
  lost_followup.kind = net::MessageKind::kWriteFollowup;
  lost_followup.from = radical.runtime(Region::kCA).endpoint().id();
  net.fabric().AddDropRule(lost_followup);

  const SimTime t0 = sim.Now();
  radical.Invoke(Region::kCA, "set_status", {Value("ada"), Value("shipping radical")},
                 [&](Value) {
                   std::printf("  client answered after %.1f ms (speculative result released "
                               "under the write intent)\n",
                               ToMillis(sim.Now() - t0));
                 });
  sim.RunFor(Millis(300));
  std::printf("  primary right after the reply: %s (followup lost, intent pending)\n",
              radical.primary().Peek("status:ada")->value.ToString().c_str());
  sim.Run();  // The intent timer fires; deterministic re-execution runs.
  std::printf("  primary after the intent timer: %s (re-executions: %llu)\n",
              radical.primary().Peek("status:ada")->value.ToString().c_str(),
              static_cast<unsigned long long>(radical.server().reexecutions()));
  std::printf("  version: %lld — applied exactly once despite the failure\n\n",
              static_cast<long long>(radical.primary().VersionOf("status:ada")));

  // Anyone reading afterwards sees the write (it was acknowledged, so
  // linearizability demands it).
  radical.Invoke(Region::kJP, "get_status", {Value("ada")}, [&](Value v) {
    std::printf("  Tokyo reads status:ada = %s\n\n", v.ToString().c_str());
  });
  sim.Run();

  std::printf("== Scenario 2: Frankfurt loses its entire cache ==\n");
  radical.runtime(Region::kDE).cache().Clear();
  for (int attempt = 1; attempt <= 2; ++attempt) {
    const SimTime t = sim.Now();
    radical.Invoke(Region::kDE, "get_status", {Value("ada")}, [&, attempt, t](Value v) {
      std::printf("  request %d: %.1f ms -> %s\n", attempt, ToMillis(sim.Now() - t),
                  v.ToString().c_str());
    });
    sim.Run();
  }
  std::printf("  request 1 missed (version -1, no speculation) and repopulated the cache;\n");
  std::printf("  request 2 is back on the speculative fast path. Caches need no\n");
  std::printf("  durability — write intents give the primary durability instead.\n");
  std::printf("\nruntime DE counters: miss-skips=%llu, speculative=%llu\n",
              static_cast<unsigned long long>(
                  radical.runtime(Region::kDE).counters().Get("spec_skipped_miss")),
              static_cast<unsigned long long>(
                  radical.runtime(Region::kDE).counters().Get("validated_speculative")));
  return 0;
}
