// Quickstart: the smallest complete Radical program.
//
// Builds a five-region deployment, registers one request handler written in
// the deterministic function IR, and invokes it from San Francisco. Walks
// through what happens underneath: the static analyzer derives f^rw at
// registration; at request time the runtime runs f^rw, sends the single LVI
// request to Virginia, and speculatively executes the handler against the
// local cache — answering the client as soon as both finish.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/apps/apps.h"
#include "src/radical/deployment.h"

using namespace radical;  // Example code; library code never does this.

int main() {
  // Everything runs on a deterministic discrete-event simulator: `sim.Now()`
  // is virtual time, and a seed reproduces a run exactly.
  Simulator sim(/*seed=*/1);
  Network net(&sim, LatencyMatrix::PaperDefault());

  // A Radical deployment: primary store + LVI server in Virginia, a runtime
  // with an eventually consistent cache in each deployment location.
  RadicalDeployment radical(&sim, &net, RadicalConfig{}, DeploymentRegions());

  // A request handler: read the user's greeting, spend 100 ms rendering,
  // record the visit, and return. Writes are explicit IR statements — that
  // is what makes the read/write set statically derivable.
  radical.RegisterFunction(Fn("greet", {"user"}, {
      Read("greeting", Cat({C("greeting:"), In("user")})),
      Compute(Millis(100)),
      Write(Cat({C("last_visit:"), In("user")}), C(Value("today"))),
      Return(V("greeting")),
  }));

  // The analyzer ran at registration; inspect its output.
  const AnalyzedFunction* analyzed = radical.registry().Find("greet");
  std::printf("registered 'greet': analyzable=%s, dependent_reads=%s\n",
              analyzed->analyzable ? "yes" : "no",
              analyzed->has_dependent_reads ? "yes" : "no");
  std::printf("derived f^rw:\n%s\n", FunctionToString(analyzed->derived).c_str());

  // Seed the primary and warm the caches (steady state after bootstrap).
  radical.Seed("greeting:ada", Value("hello, ada!"));
  radical.WarmCaches();

  // Invoke from San Francisco. The LVI round trip to Virginia is 74 ms; the
  // handler runs for ~101 ms — so coordination hides entirely behind
  // execution and the client pays near-local latency.
  const SimTime start = sim.Now();
  radical.Invoke(Region::kCA, "greet", {Value("ada")}, [&](Value result) {
    std::printf("reply after %.1f ms: %s\n", ToMillis(sim.Now() - start),
                result.ToString().c_str());
  });
  sim.Run();  // Drains the reply, the write followup, and the lock release.

  // The speculative write reached the primary via the write followup.
  std::printf("primary last_visit:ada = %s (version %lld)\n",
              radical.primary().Peek("last_visit:ada")->value.ToString().c_str(),
              static_cast<long long>(radical.primary().VersionOf("last_visit:ada")));
  std::printf("validation success rate: %.0f%%\n",
              100.0 * radical.server().ValidationSuccessRate());
  return 0;
}
