// Hotel booking demo: strong consistency where it is worth money.
//
// Five users in five regions race to book the last two rooms of the same
// hotel for the same night, concurrently. Radical's LVI protocol serializes
// the bookings through per-item write locks and validation: exactly two
// succeed, no room is ever double-booked, and each client still gets
// near-local latency when there is no conflict.
//
// Run: ./build/examples/hotel_booking_demo

#include <cstdio>

#include "src/apps/apps.h"

using namespace radical;  // Example code; library code never does this.

int main() {
  Simulator sim(99);
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalDeployment radical(&sim, &net, RadicalConfig{}, DeploymentRegions());

  HotelOptions options;
  options.initial_availability = 2;  // Two rooms left.
  const AppSpec app = MakeHotelApp(options);
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();

  std::printf("Hotel h0, date d0: 2 rooms left. Five users book simultaneously.\n\n");
  struct Attempt {
    Region region;
    bool success = false;
    double latency_ms = 0;
    bool done = false;
  };
  std::vector<Attempt> attempts;
  for (const Region region : DeploymentRegions()) {
    attempts.push_back(Attempt{region});
  }
  const SimTime start = sim.Now();
  for (size_t i = 0; i < attempts.size(); ++i) {
    Attempt* attempt = &attempts[i];
    radical.Invoke(attempt->region, "hotel_book",
                   {Value("user-" + std::string(RegionName(attempt->region))), Value("h0"),
                    Value("d0"), Value("bk" + std::to_string(i))},
                   [&, attempt, start](Value result) {
                     attempt->success = (result == Value(static_cast<int64_t>(1)));
                     attempt->latency_ms = ToMillis(sim.Now() - start);
                     attempt->done = true;
                   });
  }
  sim.Run();

  int successes = 0;
  for (const Attempt& attempt : attempts) {
    std::printf("  [%s] %-9s after %6.1f ms\n", RegionName(attempt.region),
                attempt.success ? "CONFIRMED" : "sold out", attempt.latency_ms);
    successes += attempt.success ? 1 : 0;
  }
  std::printf("\nconfirmed bookings: %d of 5 attempts (rooms available: 2)\n", successes);
  std::printf("availability counter at the primary: %s\n",
              radical.primary().Peek("avail:h0:d0")->value.ToString().c_str());
  std::printf("(2 - 5 = -3: every attempt decremented, but only the two whose\n");
  std::printf(" pre-decrement value was positive were confirmed — a linearizable\n");
  std::printf(" counter, enforced by the LVI write locks and validation)\n\n");

  // The conflict is visible in the protocol counters: the loser requests
  // validated against moved versions and ran near storage instead.
  std::printf("validation successes: %llu, failures (backup executions): %llu\n",
              static_cast<unsigned long long>(radical.server().validations_succeeded()),
              static_cast<unsigned long long>(radical.server().validations_failed()));

  // And a quiet-path booking afterwards enjoys the fast path again.
  std::printf("\nA later, uncontended booking from Frankfurt:\n");
  const SimTime t2 = sim.Now();
  radical.Invoke(Region::kDE, "hotel_book",
                 {Value("user-late"), Value("h1"), Value("d1"), Value("bk-late")},
                 [&](Value result) {
                   std::printf("  [DE] %-9s after %6.1f ms (272 ms handler hides the 93 ms "
                               "round trip)\n",
                               result == Value(static_cast<int64_t>(1)) ? "CONFIRMED"
                                                                        : "sold out",
                               ToMillis(sim.Now() - t2));
                 });
  sim.Run();
  return 0;
}
