// Analyzer playground: watch the static analyzer derive f^rw.
//
// Prints, for a handful of instructive handlers and for every function of
// the three benchmark applications, the original body and the derived slice
// — showing what survives (storage keys and their dependencies), what is
// dropped (compute, return values, written values), which reads are kept
// log-only, and which functions need the dependent-read optimization or are
// rejected outright.
//
// Run: ./build/examples/analyzer_playground

#include <cstdio>

#include "src/apps/apps.h"

using namespace radical;  // Example code; library code never does this.

namespace {

void Show(const Analyzer& analyzer, const FunctionDef& fn, const char* note) {
  const AnalyzedFunction analyzed = analyzer.Analyze(fn);
  std::printf("---- %s ----\n%s\n", note, FunctionToString(fn).c_str());
  if (!analyzed.analyzable) {
    std::printf("=> UNANALYZABLE: %s\n   (Radical will always run this handler in the "
                "near-storage location)\n\n",
                analyzed.failure_reason.c_str());
    return;
  }
  std::printf("=> f^rw (%zu of %zu statements kept%s):\n%s\n",
              analyzed.derived_stmt_count, analyzed.original_stmt_count,
              analyzed.has_dependent_reads ? "; DEPENDENT READS run against the cache" : "",
              FunctionToString(analyzed.derived).c_str());
}

}  // namespace

int main() {
  Analyzer analyzer(&HostRegistry::Standard());

  std::printf("== Instructive handlers ==\n\n");

  Show(analyzer,
       Fn("static_keys", {"user"},
          {
              Compute(Millis(200)),
              Read("profile", Cat({C("profile:"), In("user")})),
              Write(Cat({C("visits:"), In("user")}),
                    Host("expensive_digest", {V("profile")})),
              Return(V("profile")),
          }),
       "keys from inputs only: compute and the written value are sliced away");

  Show(analyzer,
       Fn("pointer_chase", {},
          {
              Read("ptr", C("pointer")),
              Read("target", V("ptr")),
              Return(V("target")),
          }),
       "dependent access (§3.3): the first read's value is the second's key");

  Show(analyzer,
       Fn("fanout", {"user", "text"},
          {
              Read("followers", Cat({C("followers:"), In("user")})),
              ForEach("f", V("followers"),
                      {
                          Read("tl", Cat({C("timeline:"), V("f")})),
                          Write(Cat({C("timeline:"), V("f")}), Append(V("tl"), In("text"))),
                      }),
          }),
       "loop fan-out: the followers read feeds the loop's keys; timeline reads "
       "feed only the written value, so they are kept log-only");

  Show(analyzer,
       Fn("opaque_key", {"user"},
          {
              Read("v", IntToStr(Host("expensive_digest", {In("user")}))),
              Return(V("v")),
          }),
       "failure case (§3.3): the key needs a host call the analyzer cannot see "
       "through");

  std::printf("\n== All 27 ported functions (the five applications of §5.1) ==\n\n");
  for (const AppSpec& app : AllFiveApps()) {
    for (const FunctionSpec& fn : app.functions) {
      const AnalyzedFunction analyzed = analyzer.Analyze(fn.def);
      std::printf("%-20s %-5s %-28s %zu -> %zu stmts\n", fn.def.name.c_str(),
                  analyzed.analyzable ? (analyzed.has_dependent_reads ? "Yes*" : "Yes") : "No",
                  analyzed.analyzable
                      ? (analyzed.has_dependent_reads ? "(dependent reads)" : "")
                      : analyzed.failure_reason.c_str(),
                  analyzed.original_stmt_count, analyzed.derived_stmt_count);
    }
  }
  std::printf("\n(* = dependent-read optimization; exactly three functions need it, as §5.1\n   reports: social_post, hotel_search, danbooru_search)\n");
  return 0;
}
