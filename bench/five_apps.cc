// Full five-application port (§5.1): end-to-end latency for all five ported
// applications — the three of the focused evaluation (Table 1) plus the
// image board and second forum — under baseline / Radical / ideal.
//
// The paper selects social media, hotel, and forum for Figures 4-6 "as they
// exhibit the full range of Radical's benefits"; this bench confirms the two
// remaining ports land inside that range rather than outside it.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

void Run() {
  std::printf("All five ported applications (27 functions), baseline vs Radical vs ideal\n\n");
  const std::vector<int> widths = {18, 10, 10, 10, 10, 9, 9};
  PrintTableHeader({"app", "base p50", "rad p50", "rad p99", "ideal p50", "improve%",
                    "val-ok%"},
                   widths);
  double best = -1e9;
  double worst = 1e9;
  std::string best_name;
  std::string worst_name;
  for (const AppSpec& app : AllFiveApps()) {
    RunOptions options;
    options.seed = 46;
    options.requests_per_client = 150;
    const ExperimentResult baseline = RunApp(app, DeployKind::kBaseline, options);
    const ExperimentResult radical = RunApp(app, DeployKind::kRadical, options);
    const ExperimentResult ideal = RunApp(app, DeployKind::kIdeal, options);
    const double improvement =
        100.0 * (baseline.overall.p50_ms - radical.overall.p50_ms) / baseline.overall.p50_ms;
    if (improvement > best) {
      best = improvement;
      best_name = app.display_name;
    }
    if (improvement < worst) {
      worst = improvement;
      worst_name = app.display_name;
    }
    PrintTableRow({app.display_name, Ms(baseline.overall.p50_ms), Ms(radical.overall.p50_ms),
                   Ms(radical.overall.p99_ms), Ms(ideal.overall.p50_ms),
                   FormatDouble(improvement, 1),
                   FormatDouble(100.0 * radical.validation_success_rate, 1)},
                  widths);
  }
  PrintRule(widths);
  std::printf("\nRange check: greatest benefit %s (%.1f%%), least %s (%.1f%%) — the three\n",
              best_name.c_str(), best, worst_name.c_str(), worst);
  std::printf("focused-evaluation apps were chosen to bracket this range (§5.1).\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
