#include "bench/bench_util.h"

#include <cstdio>
#include <memory>

#include "src/common/string_util.h"

namespace radical {

const char* DeployKindName(DeployKind kind) {
  switch (kind) {
    case DeployKind::kRadical:
      return "Radical";
    case DeployKind::kBaseline:
      return "Baseline";
    case DeployKind::kIdeal:
      return "Ideal";
  }
  return "?";
}

ExperimentResult RunApp(const AppSpec& app, DeployKind kind, const RunOptions& options) {
  Simulator sim(options.seed);
  Network net(&sim, LatencyMatrix::PaperDefault());

  std::unique_ptr<RadicalDeployment> radical;
  std::unique_ptr<PrimaryBaselineDeployment> baseline;
  std::unique_ptr<LocalIdealDeployment> ideal;
  AppService* service = nullptr;
  switch (kind) {
    case DeployKind::kRadical:
      radical = std::make_unique<RadicalDeployment>(&sim, &net, options.config, options.regions);
      service = radical.get();
      break;
    case DeployKind::kBaseline:
      baseline = std::make_unique<PrimaryBaselineDeployment>(&sim, &net, options.config);
      service = baseline.get();
      break;
    case DeployKind::kIdeal:
      ideal = std::make_unique<LocalIdealDeployment>(&sim, options.config, options.regions);
      service = ideal.get();
      break;
  }
  app.RegisterAll(service);
  app.seed(service);
  if (radical != nullptr) {
    radical->WarmCaches();
  }

  LoadGeneratorOptions load_options;
  load_options.clients_per_region = options.clients_per_region;
  load_options.requests_per_client = options.requests_per_client;
  load_options.think_time = options.think_time;
  LoadGenerator generator(&sim, service, options.regions, app.make_workload(), load_options);
  generator.Start();
  sim.Run();

  ExperimentResult result;
  result.overall = generator.Overall().Summarize();
  result.total_requests = generator.total_requests();
  for (const Region region : options.regions) {
    result.per_region[region] = generator.ForRegion(region).Summarize();
  }
  for (const FunctionSpec& fn : app.functions) {
    result.per_function[fn.def.name] = generator.ForFunction(fn.def.name).Summarize();
    for (const Region region : options.regions) {
      result.per_region_function[{region, fn.def.name}] =
          generator.ForRegionFunction(region, fn.def.name).Summarize();
    }
  }
  if (radical != nullptr) {
    result.validation_success_rate = radical->server().ValidationSuccessRate();
    result.reexecutions = radical->server().reexecutions();
    if (radical->local_locks() != nullptr) {
      result.lock_waits = radical->local_locks()->table().waits();
    }
    result.lvi_requests = radical->server().counters().Get("lvi_requests");
    uint64_t speculations = 0;
    for (const Region region : options.regions) {
      speculations += radical->runtime(region).counters().Get("speculations");
    }
    result.speculations = speculations;
    result.wan_bytes = net.wan_bytes_sent();
  }
  return result;
}

void PrintTableHeader(const std::vector<std::string>& cols, const std::vector<int>& widths) {
  PrintRule(widths);
  PrintTableRow(cols, widths);
  PrintRule(widths);
}

void PrintTableRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    line += " " + PadLeft(cells[i], static_cast<size_t>(width)) + " |";
  }
  std::printf("%s\n", line.c_str());
}

void PrintRule(const std::vector<int>& widths) {
  std::string line = "+";
  for (const int width : widths) {
    line += std::string(static_cast<size_t>(width) + 2, '-') + "+";
  }
  std::printf("%s\n", line.c_str());
}

std::string Ms(double ms, int digits) { return FormatDouble(ms, digits); }

}  // namespace radical
