#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/common/string_util.h"
#include "src/obs/json.h"

namespace radical {

const char* DeployKindName(DeployKind kind) {
  switch (kind) {
    case DeployKind::kRadical:
      return "Radical";
    case DeployKind::kBaseline:
      return "Baseline";
    case DeployKind::kIdeal:
      return "Ideal";
  }
  return "?";
}

bool BenchSmokeMode() {
  const char* smoke = std::getenv("RADICAL_BENCH_SMOKE");
  return smoke != nullptr && smoke[0] == '1';
}

ExperimentResult RunApp(const AppSpec& app, DeployKind kind, const RunOptions& raw_options) {
  RunOptions options = raw_options;
  if (BenchSmokeMode()) {
    // Shrink the load so every bench finishes in well under a second while
    // exercising the same code paths end to end.
    options.clients_per_region = std::min(options.clients_per_region, 2);
    options.requests_per_client = std::min<uint64_t>(options.requests_per_client, 5);
  }
  Simulator sim(options.seed);
  Network net(&sim, LatencyMatrix::PaperDefault());

  std::unique_ptr<RadicalDeployment> radical;
  std::unique_ptr<PrimaryBaselineDeployment> baseline;
  std::unique_ptr<LocalIdealDeployment> ideal;
  AppService* service = nullptr;
  switch (kind) {
    case DeployKind::kRadical:
      radical = std::make_unique<RadicalDeployment>(&sim, &net, options.config, options.regions);
      service = radical.get();
      break;
    case DeployKind::kBaseline:
      baseline = std::make_unique<PrimaryBaselineDeployment>(&sim, &net, options.config);
      service = baseline.get();
      break;
    case DeployKind::kIdeal:
      ideal = std::make_unique<LocalIdealDeployment>(&sim, options.config, options.regions);
      service = ideal.get();
      break;
  }
  app.RegisterAll(service);
  app.seed(service);
  if (radical != nullptr) {
    radical->WarmCaches();
  }

  LoadGeneratorOptions load_options;
  load_options.clients_per_region = options.clients_per_region;
  load_options.requests_per_client = options.requests_per_client;
  load_options.think_time = options.think_time;
  LoadGenerator generator(&sim, service, options.regions, app.make_workload(), load_options);
  generator.Start();
  const auto wall_start = std::chrono::steady_clock::now();
  sim.Run();
  const auto wall_end = std::chrono::steady_clock::now();

  ExperimentResult result;
  result.sim_seconds = static_cast<double>(sim.Now()) / 1e6;
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start).count();
  result.overall = generator.Overall().Summarize();
  result.total_requests = generator.total_requests();
  for (const Region region : options.regions) {
    result.per_region[region] = generator.ForRegion(region).Summarize();
  }
  for (const FunctionSpec& fn : app.functions) {
    result.per_function[fn.def.name] = generator.ForFunction(fn.def.name).Summarize();
    for (const Region region : options.regions) {
      result.per_region_function[{region, fn.def.name}] =
          generator.ForRegionFunction(region, fn.def.name).Summarize();
    }
  }
  if (radical != nullptr) {
    result.validation_success_rate = radical->server().ValidationSuccessRate();
    result.reexecutions = radical->server().reexecutions();
    if (radical->local_locks() != nullptr) {
      result.lock_waits = radical->local_locks()->table().waits();
    } else if (radical->sharded_locks() != nullptr) {
      result.lock_waits = radical->sharded_locks()->total_waits();
    }
    result.lvi_requests = radical->server().counters().Get("lvi_requests");
    uint64_t speculations = 0;
    for (const Region region : options.regions) {
      speculations += radical->runtime(region).counters().Get("speculations");
    }
    result.speculations = speculations;
    result.wan_bytes = net.wan_bytes_sent();
  }
  if (result.wall_seconds > 0.0) {
    result.requests_per_wall_second =
        static_cast<double>(result.total_requests) / result.wall_seconds;
  }
  return result;
}

namespace {

void WriteSummary(obs::JsonWriter* w, const Summary& s) {
  w->BeginObject();
  w->Key("count");
  w->Uint(s.count);
  w->Key("mean");
  w->Double(s.mean_ms);
  w->Key("min");
  w->Double(s.min_ms);
  w->Key("p50");
  w->Double(s.p50_ms);
  w->Key("p90");
  w->Double(s.p90_ms);
  w->Key("p99");
  w->Double(s.p99_ms);
  w->Key("max");
  w->Double(s.max_ms);
  w->EndObject();
}

}  // namespace

BenchReport::BenchReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

void BenchReport::Add(const std::string& experiment_name, const ExperimentResult& result) {
  entries_.emplace_back(experiment_name, result);
}

void BenchReport::AddCurve(ThroughputCurve curve) { curves_.push_back(std::move(curve)); }

void BenchReport::AddMicro(MicroResult result) { micro_.push_back(std::move(result)); }

void BenchReport::AddParallel(ParallelResult result) { parallel_.push_back(std::move(result)); }

std::string BenchReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String(bench_name_);
  w.Key("schema_version");
  w.Int(2);
  w.Key("latency_unit");
  w.String("ms");
  w.Key("smoke");
  w.Bool(BenchSmokeMode());
  w.Key("experiments");
  w.BeginArray();
  for (const auto& [name, result] : entries_) {
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("requests");
    w.Uint(result.total_requests);
    w.Key("latency_ms");
    WriteSummary(&w, result.overall);
    w.Key("per_region_ms");
    w.BeginObject();
    for (const auto& [region, summary] : result.per_region) {
      w.Key(RegionName(region));
      WriteSummary(&w, summary);
    }
    w.EndObject();
    w.Key("protocol");
    w.BeginObject();
    w.Key("validation_success_rate");
    w.Double(result.validation_success_rate, 6);
    w.Key("reexecutions");
    w.Uint(result.reexecutions);
    w.Key("lock_waits");
    w.Uint(result.lock_waits);
    w.Key("speculations");
    w.Uint(result.speculations);
    w.Key("wan_bytes");
    w.Uint(result.wan_bytes);
    w.Key("lvi_requests");
    w.Uint(result.lvi_requests);
    w.EndObject();
    w.Key("simulator");
    w.BeginObject();
    w.Key("sim_seconds");
    w.Double(result.sim_seconds);
    w.Key("wall_seconds");
    w.Double(result.wall_seconds, 6);
    w.Key("requests_per_wall_second");
    w.Double(result.requests_per_wall_second, 1);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("curves");
  w.BeginArray();
  for (const ThroughputCurve& curve : curves_) {
    w.BeginObject();
    w.Key("name");
    w.String(curve.name);
    w.Key("points");
    w.BeginArray();
    for (const ThroughputPoint& p : curve.points) {
      w.BeginObject();
      w.Key("shards");
      w.Int(p.shards);
      w.Key("batch_window_us");
      w.Int(p.batch_window_us);
      w.Key("clients");
      w.Int(p.clients);
      w.Key("offered_rps");
      w.Double(p.offered_rps, 1);
      w.Key("throughput_rps");
      w.Double(p.throughput_rps, 1);
      w.Key("goodput_rps");
      w.Double(p.goodput_rps, 1);
      w.Key("aborts");
      w.Uint(p.aborts);
      w.Key("reexecutions");
      w.Uint(p.reexecutions);
      w.Key("p50_ms");
      w.Double(p.p50_ms);
      w.Key("p90_ms");
      w.Double(p.p90_ms);
      w.Key("p99_ms");
      w.Double(p.p99_ms);
      w.Key("overload_control");
      w.Bool(p.overload_control);
      w.Key("rejected");
      w.Uint(p.rejected);
      w.Key("shed");
      w.Uint(p.shed);
      w.Key("deadline_exceeded");
      w.Uint(p.deadline_exceeded);
      w.Key("queue_depth_peak");
      w.Uint(p.queue_depth_peak);
      if (p.raft_groups > 0) {
        // Replicated-lock point: present only for multi-Raft curves, keyed
        // on raft_groups (tools/bench_json_check validates the group).
        w.Key("raft_groups");
        w.Int(p.raft_groups);
        w.Key("leader_kills");
        w.Uint(p.leader_kills);
        w.Key("replies_pct");
        w.Double(p.replies_pct, 2);
        w.Key("linearizable");
        w.Bool(p.linearizable);
      }
      if (p.session_point) {
        // Consistency-spectrum point: present only for session/preview
        // curves, keyed on session_point (tools/bench_json_check validates
        // the group).
        w.Key("session_point");
        w.Bool(p.session_point);
        w.Key("preview_gap_ms");
        w.Double(p.preview_gap_ms, 2);
        w.Key("preview_p50_ms");
        w.Double(p.preview_p50_ms, 2);
        w.Key("preview_accuracy_pct");
        w.Double(p.preview_accuracy_pct, 2);
        w.Key("previews");
        w.Uint(p.previews);
        w.Key("failovers");
        w.Uint(p.failovers);
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("micro");
  w.BeginArray();
  for (const MicroResult& m : micro_) {
    w.BeginObject();
    w.Key("name");
    w.String(m.name);
    w.Key("iterations");
    w.Uint(m.iterations);
    w.Key("ns_per_op");
    w.Double(m.ns_per_op, 2);
    w.Key("ops_per_sec");
    w.Double(m.ops_per_sec, 1);
    w.EndObject();
  }
  w.EndArray();
  w.Key("parallel");
  w.BeginArray();
  for (const ParallelResult& p : parallel_) {
    w.BeginObject();
    w.Key("name");
    w.String(p.name);
    w.Key("threads");
    w.Int(p.threads);
    w.Key("partitions");
    w.Int(p.partitions);
    w.Key("clients");
    w.Uint(p.clients);
    w.Key("events");
    w.Uint(p.events);
    w.Key("wall_seconds");
    w.Double(p.wall_seconds, 6);
    w.Key("events_per_sec");
    w.Double(p.events_per_sec, 1);
    w.Key("speedup_vs_1thread");
    w.Double(p.speedup_vs_1thread);
    w.Key("deterministic");
    w.Bool(p.deterministic);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string BenchReport::Write() const {
  const char* env = std::getenv("RADICAL_BENCH_JSON");
  std::string path = env != nullptr ? env : "BENCH_radical.json";
  if (path.empty()) {
    return "";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return "";
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size() ? path : "";
}

void PrintTableHeader(const std::vector<std::string>& cols, const std::vector<int>& widths) {
  PrintRule(widths);
  PrintTableRow(cols, widths);
  PrintRule(widths);
}

void PrintTableRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    line += " " + PadLeft(cells[i], static_cast<size_t>(width)) + " |";
  }
  std::printf("%s\n", line.c_str());
}

void PrintRule(const std::vector<int>& widths) {
  std::string line = "+";
  for (const int width : widths) {
    line += std::string(static_cast<size_t>(width) + 2, '-') + "+";
  }
  std::printf("%s\n", line.c_str());
}

std::string Ms(double ms, int digits) { return FormatDouble(ms, digits); }

}  // namespace radical
