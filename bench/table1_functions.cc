// Table 1 (§5.1): the benchmark applications' function inventory — whether
// each function writes, whether it is analyzable (and needs the
// dependent-read optimization, the asterisk), its median execution time, and
// its share of the workload. Execution times are measured by running each
// function against a warm local store on workload-drawn inputs.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

// Seeds an app's dataset into a bare store.
class StoreSeeder : public AppService {
 public:
  explicit StoreSeeder(VersionedStore* store) : store_(store) {}
  void Invoke(Region, const std::string&, std::vector<Value>,
              std::function<void(Value)>) override {}
  const AnalyzedFunction& RegisterFunction(const FunctionDef& fn) override {
    return registry_.Register(fn);
  }
  void Seed(const Key& key, const Value& value) override { store_->Seed(key, value); }
  ExternalServiceRegistry& externals() override { return externals_; }

 private:
  ExternalServiceRegistry externals_;
  VersionedStore* store_;
  Analyzer analyzer_{&HostRegistry::Standard()};
  FunctionRegistry registry_{&analyzer_};
};

void Run() {
  std::printf("Table 1: benchmark application functions\n");
  std::printf("(exec time measured on a warm local store; * = dependent-read optimization)\n\n");
  Analyzer analyzer(&HostRegistry::Standard());
  Interpreter interp(&HostRegistry::Standard());
  const std::vector<int> widths = {18, 46, 7, 12, 10, 10, 10};
  PrintTableHeader({"function", "description", "writes", "analyzable", "exec ms", "paper ms",
                    "workload%"},
                   widths);
  for (const AppSpec& app : AllApps()) {
    // Measure each function's execution time over workload-drawn inputs
    // against a seeded store (the state functions run against in steady
    // state).
    VersionedStore store;
    StoreSeeder seeder(&store);
    app.seed(&seeder);
    WorkloadFn workload = app.make_workload();
    Rng rng(1234);
    std::map<std::string, LatencySampler> times;
    int drawn = 0;
    // Draw until every function has enough samples (rare ones need many draws).
    const size_t needed = 30;
    while (drawn < 300000) {
      bool all_full = true;
      for (const FunctionSpec& fn : app.functions) {
        if (times[fn.def.name].count() < needed) {
          all_full = false;
        }
      }
      if (all_full) {
        break;
      }
      const RequestSpec spec = workload(rng);
      ++drawn;
      if (times[spec.function].count() >= needed * 4) {
        continue;
      }
      const FunctionSpec* fn = app.Find(spec.function);
      const ExecResult result = interp.Execute(fn->def, spec.inputs, &store);
      if (result.ok()) {
        times[spec.function].Add(result.elapsed);
      }
    }
    for (const FunctionSpec& fn : app.functions) {
      const AnalyzedFunction analyzed = analyzer.Analyze(fn.def);
      const std::string analyzable =
          analyzed.analyzable ? (analyzed.has_dependent_reads ? "Yes*" : "Yes") : "No";
      PrintTableRow({fn.def.name, fn.description, fn.writes ? "Yes" : "No", analyzable,
                     Ms(times[fn.def.name].MedianMs(), 0),
                     Ms(ToMillis(fn.paper_exec_time), 0),
                     FormatDouble(fn.workload_pct, 1)},
                    widths);
    }
    PrintRule(widths);
  }
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
