// §5.7 cost analysis: the added infrastructure cost of running Radical over
// the primary-datacenter baseline, using the paper's AWS price points, plus
// the invocation-scaling table and the measured bandwidth/second-execution
// overheads from a live (simulated) run.
//
// Paper numbers reproduced exactly (they are a price model, not a
// measurement): baseline DynamoDB $1077.36/mo; Radical adds ScyllaDB caches
// ($34 x 5 = $170) and the LVI server ($166) for $1413.36/mo — a 31%
// increase; per-invocation costs stay negligible at 1M/10M/100M monthly
// invocations.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

// AWS price points used by the paper.
constexpr double kDynamoMonthly = 1077.36;  // 50k reads/s + 500 writes/s provisioned.
constexpr double kScyllaMonthly = 34.0 * 5;   // m6g.large x 5 near-user locations.
constexpr double kLviServerMonthly = 166.0;   // t3.2xlarge.
// Lambda: $0.0000000167/ms at 1 GB... the paper charges $2.87 per 1M
// 100 ms invocations; validation failures add a re-run for 5% of requests.
constexpr double kPerMillionInvocations = 2.87;
constexpr double kValidationFailureRate = 0.05;

void PrintInfrastructure() {
  std::printf("Infrastructure cost (monthly):\n");
  const std::vector<int> widths = {34, 12, 12};
  PrintTableHeader({"component", "baseline $", "radical $"}, widths);
  PrintTableRow({"DynamoDB (primary, 50k r/s 500 w/s)", FormatDouble(kDynamoMonthly, 2),
                 FormatDouble(kDynamoMonthly, 2)},
                widths);
  PrintTableRow({"Near-user caches (ScyllaDB x5)", "-", FormatDouble(kScyllaMonthly, 2)},
                widths);
  PrintTableRow({"LVI server (EC2 t3.2xlarge)", "-", FormatDouble(kLviServerMonthly, 2)},
                widths);
  const double baseline = kDynamoMonthly;
  const double radical = kDynamoMonthly + kScyllaMonthly + kLviServerMonthly;
  PrintTableRow({"total", FormatDouble(baseline, 2), FormatDouble(radical, 2)}, widths);
  PrintRule(widths);
  std::printf("Radical / baseline = %.2fx (paper: 1.31x / +31%%)\n\n", radical / baseline);
}

void PrintInvocationScaling() {
  std::printf("Total monthly cost vs invocation volume (100 ms avg functions):\n");
  const std::vector<int> widths = {16, 14, 14};
  PrintTableHeader({"invocations/mo", "baseline $", "radical $"}, widths);
  for (const double millions : {1.0, 10.0, 100.0}) {
    const double invoke_cost = millions * kPerMillionInvocations;
    const double failure_cost = millions * kValidationFailureRate * kPerMillionInvocations;
    const double baseline = kDynamoMonthly + invoke_cost;
    const double radical =
        kDynamoMonthly + kScyllaMonthly + kLviServerMonthly + invoke_cost + failure_cost;
    PrintTableRow({FormatDouble(millions, 0) + "M", FormatDouble(baseline, 2),
                   FormatDouble(radical, 2)},
                  widths);
  }
  PrintRule(widths);
  std::printf("Paper: 1M -> $1080.23 vs $1416.37; 10M -> $1106.06 vs $1443.50;\n");
  std::printf("       100M -> $1364.36 vs $1714.71.\n\n");
}

void PrintMeasuredOverheads() {
  // Measure the protocol's real (simulated) overheads on a Fig-4-style run:
  // WAN bytes per request and the second-execution rate.
  std::printf("Measured protocol overheads (social media workload, simulated run):\n");
  RunOptions options;
  options.seed = 77;
  options.requests_per_client = 100;
  const AppSpec app = MakeSocialApp();
  const ExperimentResult radical = RunApp(app, DeployKind::kRadical, options);
  const std::vector<int> widths = {36, 14};
  PrintTableHeader({"metric", "value"}, widths);
  PrintTableRow({"requests", std::to_string(radical.total_requests)}, widths);
  PrintTableRow({"validation success rate %",
                 FormatDouble(100.0 * radical.validation_success_rate, 1)},
                widths);
  PrintTableRow({"second executions (backup+replay)",
                 std::to_string(radical.lvi_requests -
                                static_cast<uint64_t>(radical.validation_success_rate *
                                                      static_cast<double>(radical.lvi_requests)))},
                widths);
  PrintTableRow({"WAN bytes per request",
                 std::to_string(radical.wan_bytes / std::max<uint64_t>(1,
                                                                       radical.total_requests))},
                widths);
  PrintRule(widths);
  std::printf("Paper: second executions are proportional to the ~5%% validation failure\n");
  std::printf("rate; LVI bandwidth is small (key names + versions per request).\n");
}

void Run() {
  std::printf("Section 5.7: cost analysis\n\n");
  PrintInfrastructure();
  PrintInvocationScaling();
  PrintMeasuredOverheads();
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
