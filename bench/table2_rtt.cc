// Table 2 (§5.2): round-trip latency between each deployment location and
// the primary DynamoDB instance in Virginia (lat_nu<->ns) — the latency one
// LVI request observes. Reports both the configured value and a measured
// median over simulated ping messages (with jitter).

#include <cstdio>

#include "bench/bench_util.h"

namespace radical {
namespace {

void Run() {
  std::printf("Table 2: round-trip latency (ms) between each location and the primary (VA)\n\n");
  Simulator sim(7);
  Network net(&sim, LatencyMatrix::PaperDefault());
  // The LVI server's address: its extra hop models the intra-DC leg to the
  // server's EC2 instance, so a ping round trip measures lat_nu<->ns.
  const net::Endpoint server =
      net.AddEndpoint("lvi-server", kPrimaryRegion, kServerHopRtt / 2);
  const std::vector<int> widths = {8, 12, 14, 10};
  PrintTableHeader({"region", "configured", "measured p50", "paper"}, widths);
  const std::vector<int64_t> paper = {7, 74, 70, 93, 146};
  size_t i = 0;
  for (const Region region : DeploymentRegions()) {
    // Measured: ping through the network + the LVI server hop, both ways.
    LatencySampler samples;
    for (int n = 0; n < 500; ++n) {
      const SimTime start = sim.Now();
      net.endpoint(region).Send(server, net::MessageKind::kLviRequest,
                                net::kDefaultMessageBytes, [&] {
        server.Send(net.endpoint(region), net::MessageKind::kLviResponse,
                    net::kDefaultMessageBytes,
                    [&, start] { samples.Add(sim.Now() - start); });
      });
      sim.Run();
    }
    const SimDuration configured = LviLinkRtt(net.latency(), region, kPrimaryRegion);
    PrintTableRow({RegionName(region), Ms(ToMillis(configured), 0), Ms(samples.MedianMs(), 1),
                   std::to_string(paper[i])},
                  widths);
    ++i;
  }
  PrintRule(widths);
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
