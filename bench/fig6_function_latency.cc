// Figure 6 (§5.5): end-to-end median and p99 latency for every function used
// in the evaluation, baseline vs Radical vs ideal (aggregated over the five
// deployment locations).
//
// Paper shapes: functions whose execution time exceeds lat_nu<->ns benefit
// the most; short functions (forum-interact, forum-post, hotel-review) gain
// little but stay within a few ms of running near storage — using Radical is
// never much worse.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

void Run() {
  std::printf("Figure 6: end-to-end latency per function (all regions aggregated)\n\n");
  const std::vector<int> widths = {18, 9, 10, 10, 10, 10, 10, 10, 9};
  PrintTableHeader({"function", "exec ms", "base p50", "base p99", "rad p50", "rad p99",
                    "ideal p50", "ideal p99", "improve%"},
                   widths);
  for (const AppSpec& app : AllApps()) {
    RunOptions options;
    options.seed = 44;
    // More requests so rare functions (0.5% of the mix) get enough samples.
    options.requests_per_client = 400;
    const ExperimentResult baseline = RunApp(app, DeployKind::kBaseline, options);
    const ExperimentResult radical = RunApp(app, DeployKind::kRadical, options);
    const ExperimentResult ideal = RunApp(app, DeployKind::kIdeal, options);
    for (const FunctionSpec& fn : app.functions) {
      const Summary& b = baseline.per_function.at(fn.def.name);
      const Summary& r = radical.per_function.at(fn.def.name);
      const Summary& i = ideal.per_function.at(fn.def.name);
      if (b.count == 0 || r.count == 0) {
        continue;
      }
      const double improvement = 100.0 * (b.p50_ms - r.p50_ms) / b.p50_ms;
      PrintTableRow({fn.def.name, Ms(ToMillis(fn.paper_exec_time), 0), Ms(b.p50_ms),
                     Ms(b.p99_ms), Ms(r.p50_ms), Ms(r.p99_ms), Ms(i.p50_ms), Ms(i.p99_ms),
                     FormatDouble(improvement, 1)},
                    widths);
    }
    PrintRule(widths);
  }
  std::printf(
      "\nPaper shapes: the longest functions (login, recommend, book) hide the LVI\n"
      "round trip entirely; the shortest (interact, post, review) see little gain\n"
      "but remain within a few ms of the near-storage baseline.\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
