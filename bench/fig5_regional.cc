// Figure 5 (§5.4): end-to-end median and p99 latency for each application in
// each of the five deployment locations, for baseline / Radical / ideal.
//
// Paper shapes to reproduce: the improvement grows with lat_nu<->ns (JP
// benefits most); Radical is slightly *worse* than the baseline in VA (same
// function, same storage, plus Radical's overheads); Radical tracks the red
// line everywhere except social media in JP, where lat_nu<->ns exceeds the
// execution time of several functions.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

void Run() {
  std::printf("Figure 5: end-to-end latency per application per deployment location\n\n");
  const std::vector<int> widths = {14, 7, 10, 10, 10, 10, 10, 10, 9};
  PrintTableHeader({"app", "region", "base p50", "base p99", "rad p50", "rad p99", "ideal p50",
                    "ideal p99", "improve%"},
                   widths);
  for (const AppSpec& app : AllApps()) {
    RunOptions options;
    options.seed = 43;
    const ExperimentResult baseline = RunApp(app, DeployKind::kBaseline, options);
    const ExperimentResult radical = RunApp(app, DeployKind::kRadical, options);
    const ExperimentResult ideal = RunApp(app, DeployKind::kIdeal, options);
    for (const Region region : DeploymentRegions()) {
      const Summary& b = baseline.per_region.at(region);
      const Summary& r = radical.per_region.at(region);
      const Summary& i = ideal.per_region.at(region);
      const double improvement = 100.0 * (b.p50_ms - r.p50_ms) / b.p50_ms;
      PrintTableRow({app.display_name, RegionName(region), Ms(b.p50_ms), Ms(b.p99_ms),
                     Ms(r.p50_ms), Ms(r.p99_ms), Ms(i.p50_ms), Ms(i.p99_ms),
                     FormatDouble(improvement, 1)},
                    widths);
    }
    PrintRule(widths);
  }
  std::printf(
      "\nPaper shapes: improvement correlates with lat_nu<->ns (largest in JP);\n"
      "Radical slightly worse than the baseline in VA; Radical tracks the ideal in\n"
      "all locations except social media in JP.\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
