// Microbenchmarks (google-benchmark) for the core data structures: the lock
// table, the versioned store, the interpreter, the analyzer, the event
// queue, and the zipf generator. These measure real CPU time (not virtual
// time) — the simulator's own overhead matters for how large an experiment
// the harness can run.
//
// Besides the google-benchmark suite, main() always runs two hand-timed
// simulator-core loops — steady-state events per host second and fabric
// envelope round-trips per host second — and exports them as the "micro"
// section of BENCH_radical.json (bench_util BenchReport). tools/check.sh
// CHECK_MICRO=1 runs exactly that export and enforces an events/sec floor
// via RADICAL_MICRO_EVENTS_FLOOR, so a regression that reintroduces per-
// event heap traffic fails CI, not just a manual bench run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/analysis/analyzer.h"
#include "src/apps/apps.h"
#include "src/func/builder.h"
#include "src/kv/versioned_store.h"
#include "src/check/linearizability.h"
#include "src/lvi/codec.h"
#include "src/lvi/lock_table.h"
#include "src/net/network.h"
#include "src/sim/region.h"
#include "src/sim/simulator.h"

namespace radical {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  Simulator sim;
  uint64_t i = 0;
  for (auto _ : state) {
    (void)_;
    sim.Schedule(static_cast<SimDuration>(i % 100), [] {});
    if (++i % 64 == 0) {
      sim.Run();
    }
  }
  sim.Run();
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EnvelopeRoundTrip(benchmark::State& state) {
  Simulator sim;
  Network net(&sim, LatencyMatrix::PaperDefault());
  const net::Endpoint& a = net.endpoint(Region::kCA);
  const net::Endpoint& b = net.endpoint(Region::kVA);
  uint64_t i = 0;
  for (auto _ : state) {
    (void)_;
    a.Send(b, net::MessageKind::kLviRequest, 256,
           [&a, &b] { b.Send(a, net::MessageKind::kLviResponse, 512, [] {}); });
    if (++i % 64 == 0) {
      sim.Run();
    }
  }
  sim.Run();
}
BENCHMARK(BM_EnvelopeRoundTrip);

void BM_VersionedStorePut(benchmark::State& state) {
  VersionedStore store;
  uint64_t i = 0;
  for (auto _ : state) {
    (void)_;
    ++i;
    store.Put("key" + std::to_string(i % 1024), Value(static_cast<int64_t>(i)), nullptr);
  }
}
BENCHMARK(BM_VersionedStorePut);

void BM_VersionedStoreBatchVersions(benchmark::State& state) {
  VersionedStore store;
  std::vector<Key> keys;
  for (int i = 0; i < state.range(0); ++i) {
    const Key key = "key" + std::to_string(i);
    store.Seed(key, Value(static_cast<int64_t>(i)));
    keys.push_back(key);
  }
  for (auto _ : state) {
    (void)_;
    SimDuration lat = 0;
    benchmark::DoNotOptimize(store.BatchVersions(keys, &lat));
  }
}
BENCHMARK(BM_VersionedStoreBatchVersions)->Arg(4)->Arg(16)->Arg(64);

void BM_LockTableUncontended(benchmark::State& state) {
  Simulator sim;
  LockTable table(&sim);
  ExecutionId exec = 1;
  for (auto _ : state) {
    (void)_;
    table.AcquireAll(exec, {"a", "b", "c"},
                     {LockMode::kRead, LockMode::kWrite, LockMode::kRead}, [] {});
    table.ReleaseAll(exec);
    ++exec;
    if (exec % 256 == 0) {
      sim.Run();  // Drain zero-delay grant events.
    }
  }
  sim.Run();
}
BENCHMARK(BM_LockTableUncontended);

void BM_InterpreterTimeline(benchmark::State& state) {
  Interpreter interp(&HostRegistry::Standard());
  VersionedStore store;
  ValueList timeline;
  for (int i = 0; i < 20; ++i) {
    timeline.push_back(Value("entry " + std::to_string(i)));
  }
  store.Seed("timeline:u1", Value(timeline));
  const FunctionDef fn = Fn("timeline", {"u"}, {
      Read("tl", Cat({C("timeline:"), In("u")})),
      Return(Take(V("tl"), C(static_cast<int64_t>(10)))),
  });
  const std::vector<Value> inputs = {Value("u1")};
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(interp.Execute(fn, inputs, &store));
  }
}
BENCHMARK(BM_InterpreterTimeline);

void BM_InterpreterFanout(benchmark::State& state) {
  Interpreter interp(&HostRegistry::Standard());
  VersionedStore store;
  ValueList followers;
  for (int i = 0; i < state.range(0); ++i) {
    followers.push_back(Value("u" + std::to_string(i)));
  }
  store.Seed("followers:u0", Value(followers));
  const FunctionDef fn = Fn("post", {"u", "text"}, {
      Read("fs", Cat({C("followers:"), In("u")})),
      ForEach("f", V("fs"), {
          Read("tl", Cat({C("timeline:"), V("f")})),
          Write(Cat({C("timeline:"), V("f")}), Append(V("tl"), In("text"))),
      }),
      Return(C(static_cast<int64_t>(1))),
  });
  const std::vector<Value> inputs = {Value("u0"), Value("hello")};
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(interp.Execute(fn, inputs, &store));
  }
}
BENCHMARK(BM_InterpreterFanout)->Arg(8)->Arg(64);

void BM_AnalyzerSliceSocialPost(benchmark::State& state) {
  Analyzer analyzer(&HostRegistry::Standard());
  const AppSpec app = MakeSocialApp();
  const FunctionDef& fn = app.Find("social_post")->def;
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(analyzer.Analyze(fn));
  }
}
BENCHMARK(BM_AnalyzerSliceSocialPost);

void BM_PredictRwSet(benchmark::State& state) {
  Analyzer analyzer(&HostRegistry::Standard());
  Interpreter interp(&HostRegistry::Standard());
  const AppSpec app = MakeSocialApp();
  const AnalyzedFunction analyzed = analyzer.Analyze(app.Find("social_post")->def);
  CacheStore cache;
  ValueList followers;
  for (int i = 0; i < 8; ++i) {
    followers.push_back(Value("u" + std::to_string(i)));
  }
  cache.Install("followers:u0", Value(followers), 1);
  const std::vector<Value> inputs = {Value("u0"), Value("p1"), Value("hello")};
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(PredictRwSet(analyzed, inputs, &cache, interp));
  }
}
BENCHMARK(BM_PredictRwSet);

void BM_CodecEncodeRequest(benchmark::State& state) {
  LviRequest request;
  request.exec_id = 1;
  request.origin = Region::kCA;
  request.function = "social_post";
  request.inputs = {Value("u1"), Value("p1"), Value("hello world")};
  for (int i = 0; i < 10; ++i) {
    request.items.push_back(LviItem{"timeline:u" + std::to_string(i), 3, LockMode::kWrite});
  }
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(EncodeLviRequest(request));
  }
}
BENCHMARK(BM_CodecEncodeRequest);

void BM_CodecDecodeRequest(benchmark::State& state) {
  LviRequest request;
  request.exec_id = 1;
  request.origin = Region::kCA;
  request.function = "social_post";
  request.inputs = {Value("u1"), Value("p1"), Value("hello world")};
  for (int i = 0; i < 10; ++i) {
    request.items.push_back(LviItem{"timeline:u" + std::to_string(i), 3, LockMode::kWrite});
  }
  const WireBuffer buffer = EncodeLviRequest(request);
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(DecodeLviRequest(buffer));
  }
}
BENCHMARK(BM_CodecDecodeRequest);

void BM_LinearizabilityCheck(benchmark::State& state) {
  // A realistically contended per-key history.
  Rng rng(7);
  std::vector<HistoryOp> ops;
  for (int i = 0; i < state.range(0); ++i) {
    HistoryOp op;
    op.is_write = rng.NextBool(0.5);
    op.key = "k";
    op.value = Value("w" + std::to_string(op.is_write ? i : static_cast<int>(
                                                            rng.NextBelow(
                                                                static_cast<uint64_t>(i) + 1))));
    op.invoke = static_cast<SimTime>(i) * 10;
    op.response = op.invoke + 25;  // Overlapping windows.
    ops.push_back(op);
  }
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(CheckRegisterHistory(ops, Value()));
  }
}
BENCHMARK(BM_LinearizabilityCheck)->Arg(10)->Arg(20);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(100000, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    (void)_;
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

// --- BENCH_radical.json "micro" export ---------------------------------------

// Hand-timed (steady_clock) rather than read back out of google-benchmark:
// the export must not depend on reporter formats, and a plain loop over the
// same operations is the measurement downstream scripts actually consume.

MicroResult MeasureSteadyStateEvents() {
  Simulator sim;
  const uint64_t iterations = BenchSmokeMode() ? 200'000 : 2'000'000;
  auto drive = [&sim](uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      sim.Schedule(static_cast<SimDuration>(i % 100), [] {});
      if ((i + 1) % 64 == 0) {
        sim.Run();
      }
    }
    sim.Run();
  };
  drive(iterations / 10);  // Warm the node slab to its high-water mark.
  const auto start = std::chrono::steady_clock::now();
  drive(iterations);
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  MicroResult r;
  r.name = "sim_events_steady_state";
  r.iterations = iterations;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(iterations);
  r.ops_per_sec = static_cast<double>(iterations) / seconds;
  return r;
}

MicroResult MeasureEnvelopeRoundTrip() {
  Simulator sim;
  Network net(&sim, LatencyMatrix::PaperDefault());
  const net::Endpoint& a = net.endpoint(Region::kCA);
  const net::Endpoint& b = net.endpoint(Region::kVA);
  const uint64_t iterations = BenchSmokeMode() ? 20'000 : 500'000;
  auto drive = [&](uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      a.Send(b, net::MessageKind::kLviRequest, 256,
             [&a, &b] { b.Send(a, net::MessageKind::kLviResponse, 512, [] {}); });
      if ((i + 1) % 64 == 0) {
        sim.Run();
      }
    }
    sim.Run();
  };
  drive(iterations / 10);  // Warm channels, counters, and the event slab.
  const auto start = std::chrono::steady_clock::now();
  drive(iterations);
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  MicroResult r;
  r.name = "envelope_round_trip";
  r.iterations = iterations;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(iterations);
  r.ops_per_sec = static_cast<double>(iterations) / seconds;
  return r;
}

// Runs both loops, writes the report, and enforces the optional events/sec
// floor (RADICAL_MICRO_EVENTS_FLOOR). Returns the process exit status.
int ExportMicroReport() {
  BenchReport report("micro_core");
  const MicroResult events = MeasureSteadyStateEvents();
  const MicroResult round_trip = MeasureEnvelopeRoundTrip();
  report.AddMicro(events);
  report.AddMicro(round_trip);
  const std::string path = report.Write();
  std::printf("\nmicro: %s %.1f ns/op (%.0f ops/s)\n", events.name.c_str(), events.ns_per_op,
              events.ops_per_sec);
  std::printf("micro: %s %.1f ns/op (%.0f ops/s)\n", round_trip.name.c_str(),
              round_trip.ns_per_op, round_trip.ops_per_sec);
  if (!path.empty()) {
    std::printf("micro: report written to %s\n", path.c_str());
  }
  const char* floor_env = std::getenv("RADICAL_MICRO_EVENTS_FLOOR");
  if (floor_env != nullptr && *floor_env != '\0') {
    const double floor = std::strtod(floor_env, nullptr);
    if (events.ops_per_sec < floor) {
      std::fprintf(stderr, "micro: FAIL %s %.0f ops/s below floor %.0f\n", events.name.c_str(),
                   events.ops_per_sec, floor);
      return 1;
    }
    std::printf("micro: %s above floor %.0f ops/s\n", events.name.c_str(), floor);
  }
  return 0;
}

}  // namespace
}  // namespace radical

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return radical::ExportMicroReport();
}
