// Figure 1 (§2, Motivation): latency of a ~100 ms + one-storage-read
// application under three deployments, for users in each of the five global
// locations:
//
//   - Centralized: application and data both in Virginia.
//   - Geo-replicated: DynamoDB-global-tables-style strongly consistent
//     replicas (VA / OH / OR); the application runs near the user but every
//     strong read pays quorum coordination (the PRAM bound, §2).
//   - Local (red line): application near the user against local,
//     inconsistent storage — the best possible latency.
//
// Expected shape: centralized grows with distance from VA; geo-replication
// does NOT fix it (usually worse than centralized); local is far below both.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/kv/quorum_store.h"

namespace radical {
namespace {

constexpr SimDuration kComputeTime = Millis(100);
constexpr SimDuration kInvoke = Millis(14);  // Lambda instantiation + blob load.
constexpr int kRequests = 1000;

// Centralized: request crosses the WAN to VA, executes beside the data.
Summary RunCentralized(Region user) {
  Simulator sim(10 + static_cast<uint64_t>(user));
  Network net(&sim, LatencyMatrix::PaperDefault());
  VersionedStore store;
  store.Seed("item", Value("data"));
  LatencySampler samples;
  for (int i = 0; i < kRequests; ++i) {
    const SimTime start = sim.Now();
    net.endpoint(user).Send(net.endpoint(Region::kVA), net::MessageKind::kDirectRequest,
                            net::kDefaultMessageBytes, [&] {
      sim.Schedule(kInvoke + kComputeTime, [&] {
        SimDuration read_cost = 0;
        store.Get("item", &read_cost);
        sim.Schedule(read_cost, [&] {
          net.endpoint(Region::kVA).Send(net.endpoint(user), net::MessageKind::kDirectResponse,
                                         net::kDefaultMessageBytes,
                                         [&, start] { samples.Add(sim.Now() - start); });
        });
      });
    });
    sim.Run();
  }
  return samples.Summarize();
}

// Geo-replicated: the application runs near the user; its one storage read
// is strongly consistent against the replicated store.
Summary RunGeoReplicated(Region user) {
  Simulator sim(20 + static_cast<uint64_t>(user));
  Network net(&sim, LatencyMatrix::PaperDefault());
  QuorumStore store(&net, {Region::kVA, Region::kOH, Region::kOR});
  store.Seed("item", Value("data"));
  LatencySampler samples;
  for (int i = 0; i < kRequests; ++i) {
    const SimTime start = sim.Now();
    sim.Schedule(kInvoke + kComputeTime, [&] {
      store.Read(user, "item", [&, start](std::optional<Item>) {
        samples.Add(sim.Now() - start);
      });
    });
    sim.Run();
  }
  return samples.Summarize();
}

// Local (inconsistent): everything in-region.
Summary RunLocal(Region user) {
  Simulator sim(30 + static_cast<uint64_t>(user));
  VersionedStoreOptions store_options;
  store_options.read_latency = Millis(1);
  VersionedStore store(store_options);
  store.Seed("item", Value("data"));
  LatencySampler samples;
  for (int i = 0; i < kRequests; ++i) {
    const SimTime start = sim.Now();
    sim.Schedule(kInvoke + kComputeTime, [&] {
      SimDuration read_cost = 0;
      store.Get("item", &read_cost);
      sim.Schedule(read_cost, [&, start] { samples.Add(sim.Now() - start); });
    });
    sim.Run();
  }
  return samples.Summarize();
}

void Run() {
  std::printf("Figure 1: latency of a ~100 ms / 1-read app per user location (ms)\n");
  std::printf("Deployments: centralized (app+data in VA), geo-replicated strong storage\n");
  std::printf("(VA/OH/OR), and local inconsistent storage (best possible, red line).\n\n");
  const std::vector<int> widths = {8, 16, 16, 16, 16, 16, 16};
  PrintTableHeader({"user", "central p50", "central p99", "geo p50", "geo p99", "local p50",
                    "local p99"},
                   widths);
  for (const Region user : DeploymentRegions()) {
    const Summary central = RunCentralized(user);
    const Summary geo = RunGeoReplicated(user);
    const Summary local = RunLocal(user);
    PrintTableRow({RegionName(user), Ms(central.p50_ms), Ms(central.p99_ms), Ms(geo.p50_ms),
                   Ms(geo.p99_ms), Ms(local.p50_ms), Ms(local.p99_ms)},
                  widths);
  }
  PrintRule(widths);
  std::printf(
      "\nShape check: geo-replication does not beat the centralized deployment for\n"
      "most users (every strong read pays inter-replica coordination), while local\n"
      "storage is dramatically faster everywhere — the gap Radical targets.\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
