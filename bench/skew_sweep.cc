// Skew sweep (supports §5.3's workload claim): how Radical's validation
// success rate and end-to-end latency respond to key-popularity skew.
//
// The paper evaluates at zipf 0.99 — "at higher skew values ... this
// stresses Radical's ability to handle many concurrent requests that touch
// the same keys and thereby the performance of its locking scheme" — and
// still measures ~95% validation success. This bench sweeps the zipf
// parameter of the forum's post selection (the most contention-sensitive
// application) from uniform to extreme and reports the success rate, median
// and p99 latency, and re-execution counts.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

void Run() {
  std::printf("Skew sweep: forum application, zipf theta 0 (uniform) .. 1.2 (extreme)\n\n");
  const std::vector<int> widths = {8, 10, 10, 10, 12, 8};
  PrintTableHeader({"theta", "rad p50", "rad p99", "val-ok%", "lock waits", "base p50"},
                   widths);
  for (const double theta : {0.0, 0.5, 0.9, 0.99, 1.1, 1.2}) {
    ForumOptions forum_options;
    forum_options.zipf_theta = theta;
    const AppSpec app = MakeForumApp(forum_options);
    RunOptions options;
    options.seed = 3000 + static_cast<uint64_t>(theta * 100);
    options.requests_per_client = 150;
    const ExperimentResult radical = RunApp(app, DeployKind::kRadical, options);
    const ExperimentResult baseline = RunApp(app, DeployKind::kBaseline, options);
    PrintTableRow({FormatDouble(theta, 2), Ms(radical.overall.p50_ms),
                   Ms(radical.overall.p99_ms),
                   FormatDouble(100.0 * radical.validation_success_rate, 1),
                   std::to_string(radical.lock_waits), Ms(baseline.overall.p50_ms)},
                  widths);
  }
  PrintRule(widths);
  std::printf(
      "\nShape: the median is essentially flat across skew (validation failures and\n"
      "lock waits land in the tail, not the median); success stays >90%% even past\n"
      "zipf 0.99, supporting the paper's claim that the locking scheme tolerates\n"
      "highly skewed workloads.\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
