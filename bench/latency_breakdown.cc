// Latency breakdown (§5.5's component list): where each function's
// end-to-end time goes in Radical, averaged per request:
//
//   (1)+(2) instantiation + blob load
//   (3)     f^rw execution (plus version gathering)
//   (4)     the overlap window: max(function execution, LVI round trip)
//   (5)     completion after both finish (cache installs, reply) — the
//           validation-failure path shows up as a larger overlap window
//           (the backup execution happens inside the LVI round trip).
//
// The "LVI-stall" column is the §5.4 effect isolated: the time spent waiting
// for the LVI response *after* the speculative execution already finished —
// large exactly where the paper calls it out (short functions, far regions).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/obs/span.h"
#include "src/radical/trace.h"

namespace radical {
namespace {

// Accumulates protocol-leg spans across all RunApp calls; dumped as one
// Chrome trace-event file when RADICAL_TRACE_JSON names a destination.
obs::SpanCollector* g_spans = nullptr;

void RunApp(const AppSpec& app, Region region) {
  Simulator sim(4242);
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalDeployment radical(&sim, &net, RadicalConfig{}, {region});
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();
  TraceCollector tracer;
  radical.runtime(region).set_tracer(&tracer);
  radical.AttachSpans(g_spans);

  LoadGeneratorOptions load;
  load.clients_per_region = 8;
  load.requests_per_client = 250;
  load.think_time = Seconds(2);
  if (BenchSmokeMode()) {
    load.clients_per_region = 2;
    load.requests_per_client = 5;
  }
  WorkloadFn workload = app.make_workload();
  LoadGenerator generator(&sim, &radical, {region}, workload, load);
  generator.Start();
  sim.Run();

  std::printf("%s from %s (per-request means, ms):\n", app.display_name.c_str(),
              RegionName(region));
  const std::vector<int> widths = {18, 9, 8, 9, 10, 10, 10, 10};
  PrintTableHeader({"function", "instant.", "f^rw", "overlap", "lvi-stall", "complete",
                    "total", "lvi-bound%"},
                   widths);
  for (const FunctionSpec& fn : app.functions) {
    const auto traces = tracer.ForFunction(fn.def.name);
    if (traces.empty()) {
      continue;
    }
    PrintTableRow({fn.def.name,
                   Ms(tracer.MeanMs(fn.def.name, &RequestTrace::Instantiation)),
                   Ms(tracer.MeanMs(fn.def.name, &RequestTrace::FrwTime)),
                   Ms(tracer.MeanMs(fn.def.name, &RequestTrace::OverlapWindow)),
                   Ms(tracer.MeanMs(fn.def.name, &RequestTrace::LviStall)),
                   Ms(tracer.MeanMs(fn.def.name, &RequestTrace::Completion)),
                   Ms(tracer.MeanMs(fn.def.name, &RequestTrace::Total)),
                   FormatDouble(100.0 * tracer.LviBoundFraction(fn.def.name), 0)},
                  widths);
  }
  PrintRule(widths);
  std::printf("\n");
}

void Run() {
  std::printf("Latency breakdown: the five components of §5.5, measured per function\n\n");
  const char* trace_path = std::getenv("RADICAL_TRACE_JSON");
  obs::SpanCollector spans;
  if (trace_path != nullptr && trace_path[0] != '\0') {
    g_spans = &spans;
  }
  // CA: moderate round trip — long functions fully hide it.
  RunApp(MakeSocialApp(), Region::kCA);
  // JP: the paper's outlier case — lat_nu<->ns (146 ms) exceeds several
  // functions' execution times, so the LVI stall appears.
  RunApp(MakeSocialApp(), Region::kJP);
  RunApp(MakeHotelApp(), Region::kJP);
  std::printf(
      "Shapes: instantiation (~14 ms) and f^rw (~5 ms) are constant; the overlap\n"
      "window equals max(execution, lat_nu<->ns); the LVI stall is zero in CA for\n"
      ">100 ms functions and large in JP for functions shorter than 146 ms —\n"
      "exactly the social-media-in-Japan effect of §5.4.\n");
  if (g_spans != nullptr) {
    if (spans.WriteChromeTrace(trace_path)) {
      std::printf("Wrote %zu spans to %s (open with https://ui.perfetto.dev)\n",
                  spans.spans().size(), trace_path);
    } else {
      std::printf("Failed to write trace to %s\n", trace_path);
    }
  }
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
