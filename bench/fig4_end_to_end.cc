// Figure 4 (§5.3): end-to-end median and p99 latency per application for the
// primary-datacenter baseline vs Radical, with the inconsistent lower bound
// ("max possible", the red line). Also reports Radical's improvement over
// the baseline, the fraction of the maximum possible improvement achieved,
// and the LVI validation success rate.
//
// Paper results to reproduce in shape: 28-35% improvement over the baseline,
// 84-89% of the maximum possible improvement, ~95% validation success under
// high skew.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

void Run() {
  std::printf("Figure 4: end-to-end latency per application, all five regions aggregated\n");
  std::printf("(10 clients/region x 200 requests; workload mixes of Table 1)\n\n");
  BenchReport report("fig4_end_to_end");
  const std::vector<int> widths = {14, 10, 10, 10, 10, 10, 10, 9, 9, 9};
  PrintTableHeader({"app", "base p50", "base p99", "rad p50", "rad p99", "ideal p50",
                    "ideal p99", "improve%", "of-max%", "val-ok%"},
                   widths);
  for (const AppSpec& app : AllApps()) {
    RunOptions options;
    options.seed = 42;
    const ExperimentResult baseline = RunApp(app, DeployKind::kBaseline, options);
    const ExperimentResult radical = RunApp(app, DeployKind::kRadical, options);
    const ExperimentResult ideal = RunApp(app, DeployKind::kIdeal, options);
    report.Add(app.name + "/baseline", baseline);
    report.Add(app.name + "/radical", radical);
    report.Add(app.name + "/ideal", ideal);
    const double improvement =
        100.0 * (baseline.overall.p50_ms - radical.overall.p50_ms) / baseline.overall.p50_ms;
    const double of_max = 100.0 * (baseline.overall.p50_ms - radical.overall.p50_ms) /
                          (baseline.overall.p50_ms - ideal.overall.p50_ms);
    PrintTableRow({app.display_name, Ms(baseline.overall.p50_ms), Ms(baseline.overall.p99_ms),
                   Ms(radical.overall.p50_ms), Ms(radical.overall.p99_ms),
                   Ms(ideal.overall.p50_ms), Ms(ideal.overall.p99_ms),
                   FormatDouble(improvement, 1), FormatDouble(of_max, 1),
                   FormatDouble(100.0 * radical.validation_success_rate, 1)},
                  widths);
  }
  PrintRule(widths);
  std::printf(
      "\nPaper: improvement 28-35%%, 84-89%% of the maximum possible, ~95%% validation\n"
      "success for all applications.\n");
  const std::string json_path = report.Write();
  if (!json_path.empty()) {
    std::printf("Wrote machine-readable results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
