// Ablation: the two design decisions the LVI protocol's latency story rests
// on (§1, §3.2):
//
//   1. Speculative execution — without it, the function runs only after the
//      LVI response validates, so coordination and execution serialize.
//   2. The single-request commit (locks + write intents) — without it, the
//      runtime must ship its writes and await an ack before answering the
//      client, paying a second round trip on every write.
//
// Measured on the social media workload across all five regions.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

void Run() {
  std::printf("Ablation: Radical's design decisions (social media workload)\n\n");
  const AppSpec app = MakeSocialApp();

  RunOptions base;
  base.seed = 55;
  base.requests_per_client = 150;

  RunOptions no_spec = base;
  no_spec.config.speculation_enabled = false;

  RunOptions two_rtt = base;
  two_rtt.config.single_request_commit = false;

  const ExperimentResult full = RunApp(app, DeployKind::kRadical, base);
  const ExperimentResult spec_off = RunApp(app, DeployKind::kRadical, no_spec);
  const ExperimentResult two_rtt_result = RunApp(app, DeployKind::kRadical, two_rtt);
  const ExperimentResult baseline = RunApp(app, DeployKind::kBaseline, base);

  const std::vector<int> widths = {30, 10, 10};
  PrintTableHeader({"configuration", "p50 ms", "p99 ms"}, widths);
  PrintTableRow({"Radical (full)", Ms(full.overall.p50_ms), Ms(full.overall.p99_ms)}, widths);
  PrintTableRow({"no speculation", Ms(spec_off.overall.p50_ms), Ms(spec_off.overall.p99_ms)},
                widths);
  PrintTableRow({"two-RTT commit (no intents)", Ms(two_rtt_result.overall.p50_ms),
                 Ms(two_rtt_result.overall.p99_ms)},
                widths);
  PrintTableRow({"primary-DC baseline", Ms(baseline.overall.p50_ms),
                 Ms(baseline.overall.p99_ms)},
                widths);
  PrintRule(widths);
  std::printf(
      "\nShapes: without speculation the median collapses toward (and past) the\n"
      "baseline — overlap is where the win comes from. The two-RTT commit mostly\n"
      "hurts the write functions' tail (writes are ~1%% of this mix), which is\n"
      "exactly why the write-intent mechanism targets them.\n");

  // Per-write-function view of the two-RTT ablation.
  std::printf("\nWrite functions under the two-RTT commit:\n");
  const std::vector<int> widths2 = {18, 12, 12, 14};
  PrintTableHeader({"function", "full p50", "2-RTT p50", "added ms"}, widths2);
  for (const FunctionSpec& fn : app.functions) {
    if (!fn.writes) {
      continue;
    }
    const Summary& f = full.per_function.at(fn.def.name);
    const Summary& t = two_rtt_result.per_function.at(fn.def.name);
    if (f.count == 0 || t.count == 0) {
      continue;
    }
    PrintTableRow({fn.def.name, Ms(f.p50_ms), Ms(t.p50_ms), Ms(t.p50_ms - f.p50_ms)}, widths2);
  }
  PrintRule(widths2);
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
