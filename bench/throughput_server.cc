// Server throughput (§5.3 discussion): "the only bottleneck Radical
// introduces is the singleton LVI server". This bench gives that claim a
// load-latency curve: with a finite serving capacity, end-to-end latency is
// flat until the offered load approaches the server's capacity, then
// queueing blows up the tail — the classic saturation knee. Below the knee,
// Radical's throughput equals the baseline's (the server adds no other
// limit), which is why the paper reports no separate throughput results.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

struct LoadPoint {
  double offered_rps;
  Summary latency;
  uint64_t queued;
};

LoadPoint MeasureAtLoad(int clients_per_region, SimDuration think, uint64_t capacity_rps) {
  Simulator sim(8600 + static_cast<uint64_t>(clients_per_region));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  config.server.serving_capacity_rps = capacity_rps;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  const AppSpec app = MakeSocialApp();
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();
  LoadGeneratorOptions load;
  load.clients_per_region = clients_per_region;
  load.requests_per_client = 60;
  load.think_time = think;
  LoadGenerator generator(&sim, &radical, DeploymentRegions(), app.make_workload(), load);
  const SimTime start = sim.Now();
  generator.Start();
  sim.Run();
  LoadPoint point;
  point.latency = generator.Overall().Summarize();
  const double duration_s = ToMillis(sim.Now() - start) / 1000.0;
  point.offered_rps = duration_s > 0
                          ? static_cast<double>(generator.total_requests()) / duration_s
                          : 0.0;
  point.queued = radical.server().counters().Get("queued_arrivals");
  return point;
}

void Run() {
  constexpr uint64_t kCapacity = 600;  // Requests/second the singleton serves.
  std::printf("LVI server saturation: capacity %llu req/s, social media workload\n\n",
              static_cast<unsigned long long>(kCapacity));
  const std::vector<int> widths = {14, 11, 10, 10, 10, 12};
  PrintTableHeader({"clients total", "load req/s", "p50 ms", "p90 ms", "p99 ms",
                    "queued msgs"},
                   widths);
  // Closed-loop load sweep: more clients with shorter think times.
  const std::vector<std::pair<int, SimDuration>> points = {
      {4, Millis(500)},  {10, Millis(300)}, {20, Millis(150)},
      {30, Millis(60)},  {40, Millis(20)},  {50, Millis(5)},
  };
  for (const auto& [clients, think] : points) {
    const LoadPoint point = MeasureAtLoad(clients, think, kCapacity);
    PrintTableRow({std::to_string(clients * 5), Ms(point.offered_rps, 0),
                   Ms(point.latency.p50_ms), Ms(point.latency.p90_ms),
                   Ms(point.latency.p99_ms), std::to_string(point.queued)},
                  widths);
  }
  PrintRule(widths);
  std::printf(
      "\nShape: latency is flat while offered load stays below the server's\n"
      "capacity, then the queue builds and the tail explodes — the singleton LVI\n"
      "server is the bottleneck, and replicating it (§5.6) is the remedy.\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
