// Server throughput (§5.3 discussion): "the only bottleneck Radical
// introduces is the singleton LVI server". This bench gives that claim a
// load-latency curve: with a finite serving capacity, end-to-end latency is
// flat until the offered load approaches the server's capacity, then
// queueing blows up the tail — the classic saturation knee. Below the knee,
// Radical's throughput equals the baseline's (the server adds no other
// limit), which is why the paper reports no separate throughput results.
//
// The scaling sections then measure the remedy this repo adds on top of the
// paper: sharding the server's admission/lock/intent hot path (LviServer
// `shards`) plus admission-window request batching (`batch_window`). Both a
// closed-loop sweep (fixed client population per configuration) and an
// open-loop sweep (fixed arrival rate, no flow control — the honest
// saturation measurement) export a throughput-vs-shards curve into
// BENCH_radical.json (schema_version 2, "curves").
//
//   throughput_server [--shards=N] [--batch-window-us=U] [--clients=C]
//
// --shards pins the sweep to one shard count (default sweeps 1,2,4,8),
// --batch-window-us sets the admission window for sharded points (default
// 200), --clients the closed-loop clients per region (default 16).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/func/builder.h"

namespace radical {
namespace {

struct LoadPoint {
  double offered_rps;
  Summary latency;
  uint64_t queued;
};

LoadPoint MeasureAtLoad(int clients_per_region, SimDuration think, uint64_t capacity_rps) {
  Simulator sim(8600 + static_cast<uint64_t>(clients_per_region));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  config.server.serving_capacity_rps = capacity_rps;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  const AppSpec app = MakeSocialApp();
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();
  LoadGeneratorOptions load;
  load.clients_per_region = clients_per_region;
  load.requests_per_client = 60;
  load.think_time = think;
  LoadGenerator generator(&sim, &radical, DeploymentRegions(), app.make_workload(), load);
  const SimTime start = sim.Now();
  generator.Start();
  sim.Run();
  LoadPoint point;
  point.latency = generator.Overall().Summarize();
  const double duration_s = ToMillis(sim.Now() - start) / 1000.0;
  point.offered_rps = duration_s > 0
                          ? static_cast<double>(generator.total_requests()) / duration_s
                          : 0.0;
  point.queued = radical.server().counters().Get("queued_arrivals");
  return point;
}

void Run() {
  constexpr uint64_t kCapacity = 600;  // Requests/second the singleton serves.
  std::printf("LVI server saturation: capacity %llu req/s, social media workload\n\n",
              static_cast<unsigned long long>(kCapacity));
  const std::vector<int> widths = {14, 11, 10, 10, 10, 12};
  PrintTableHeader({"clients total", "load req/s", "p50 ms", "p90 ms", "p99 ms",
                    "queued msgs"},
                   widths);
  // Closed-loop load sweep: more clients with shorter think times.
  const std::vector<std::pair<int, SimDuration>> points = {
      {4, Millis(500)},  {10, Millis(300)}, {20, Millis(150)},
      {30, Millis(60)},  {40, Millis(20)},  {50, Millis(5)},
  };
  for (const auto& [clients, think] : points) {
    const LoadPoint point = MeasureAtLoad(clients, think, kCapacity);
    PrintTableRow({std::to_string(clients * 5), Ms(point.offered_rps, 0),
                   Ms(point.latency.p50_ms), Ms(point.latency.p90_ms),
                   Ms(point.latency.p99_ms), std::to_string(point.queued)},
                  widths);
  }
  PrintRule(widths);
  std::printf(
      "\nShape: latency is flat while offered load stays below the server's\n"
      "capacity, then the queue builds and the tail explodes — the singleton LVI\n"
      "server is the bottleneck, and replicating it (§5.6) is the remedy.\n");
}

// Per-link queueing under constrained WAN bandwidth: rerun the heaviest load
// point with finite-bandwidth WAN links and report the fabric's per-channel
// queueing-delay percentiles — the links into the LVI server (near the
// primary in VA) carry every request and queue first.
void RunLinkQueueing() {
  constexpr uint64_t kWanBandwidth = 64 * 1024;  // 64 KiB/s per WAN link.
  std::printf("\nPer-link queueing at high load, WAN links capped at %llu KiB/s\n\n",
              static_cast<unsigned long long>(kWanBandwidth / 1024));
  Simulator sim(8700);
  NetworkOptions net_options;
  net_options.wan_bandwidth_bytes_per_sec = kWanBandwidth;
  Network net(&sim, LatencyMatrix::PaperDefault(), net_options);
  RadicalConfig config;
  config.server.serving_capacity_rps = 600;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  const AppSpec app = MakeSocialApp();
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();
  LoadGeneratorOptions load;
  load.clients_per_region = 40;
  load.requests_per_client = 60;
  load.think_time = Millis(20);
  LoadGenerator generator(&sim, &radical, DeploymentRegions(), app.make_workload(), load);
  generator.Start();
  sim.Run();
  const std::vector<int> link_widths = {26, 8, 12, 11, 11, 11};
  PrintTableHeader({"link", "msgs", "bytes", "queue p50", "queue p90", "queue p99"},
                   link_widths);
  net.fabric().ForEachChannel([&](const net::Channel& ch) {
    const net::LinkStats& stats = ch.stats();
    if (!ch.wan() || stats.queue_delay.empty() || stats.queue_delay.PercentileMs(99) <= 0.0) {
      return;
    }
    const std::string link = net.fabric().info(ch.from()).name + " -> " +
                             net.fabric().info(ch.to()).name;
    PrintTableRow({link, std::to_string(stats.messages_sent), std::to_string(stats.bytes_sent),
                   Ms(stats.queue_delay.PercentileMs(50)), Ms(stats.queue_delay.PercentileMs(90)),
                   Ms(stats.queue_delay.PercentileMs(99))},
                  link_widths);
  });
  PrintRule(link_widths);
  std::printf(
      "\nThe LVI server's response links queue hardest: responses carry fresh\n"
      "items for cache repair, so the server -> runtime direction moves more\n"
      "bytes than the requests. End-to-end p99 under the cap: %.1f ms.\n",
      generator.Overall().PercentileMs(99));
}

// --- Sharded scaling sweeps --------------------------------------------------

struct ScalingFlags {
  std::vector<int> shard_counts = {1, 2, 4, 8};
  int64_t batch_window_us = 200;
  int clients_per_region = 16;
};

// Uniform reads with a 10% single-key read-modify-write mix, over a keyspace
// wide enough that the shards see even load, lock conflicts are rare, and
// cache staleness stays at its steady-state level — the workload that
// isolates the server's admission capacity from application contention.
// (A write-heavy mix under overload measures validation collapse instead:
// every queued millisecond widens the window in which a concurrent write
// invalidates the speculation, and the backup path swamps the servers.)
constexpr int kScalingKeys = 8192;
constexpr double kScalingWriteFraction = 0.1;

FunctionDef ScalingWriteFunction() {
  return Fn("bump", {"k"},
            {Read("v", In("k")), Write(In("k"), Add(V("v"), C(Value(static_cast<int64_t>(1))))),
             Return(V("v"))});
}

FunctionDef ScalingReadFunction() {
  return Fn("peek", {"k"}, {Read("v", In("k")), Return(V("v"))});
}

std::string ScalingKey(uint64_t i) { return "ctr/" + std::to_string(i % kScalingKeys); }

RequestSpec ScalingRequest(Rng& rng) {
  const std::string function = rng.NextBool(kScalingWriteFraction) ? "bump" : "peek";
  return RequestSpec{function, {Value(ScalingKey(rng.Next()))}};
}

RadicalConfig ScalingConfig(int shards, int64_t batch_window_us) {
  RadicalConfig config;
  config.server.serving_capacity_rps = 600;  // Per shard: admission scales out.
  config.server.shards = shards;
  config.server.batch_window = shards > 1 ? Micros(batch_window_us) : 0;
  return config;
}

void SeedScalingKeys(RadicalDeployment* radical) {
  for (int i = 0; i < kScalingKeys; ++i) {
    radical->Seed(ScalingKey(static_cast<uint64_t>(i)), Value(static_cast<int64_t>(0)));
  }
}

// Closed loop, weak scaling: the client population grows with the shard
// count (each point runs `clients_per_region * shards` clients per region),
// so every configuration is offered the same load *per shard*. Throughput
// then scales with the shard count while per-request latency stays flat —
// the signature of a hot path that actually partitioned.
ThroughputPoint MeasureClosedLoop(int shards, int64_t batch_window_us, int clients_per_region) {
  Simulator sim(9100 + static_cast<uint64_t>(shards));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalDeployment radical(&sim, &net, ScalingConfig(shards, batch_window_us),
                            DeploymentRegions());
  radical.RegisterFunction(ScalingWriteFunction());
  radical.RegisterFunction(ScalingReadFunction());
  SeedScalingKeys(&radical);
  radical.WarmCaches();
  LoadGeneratorOptions load;
  load.clients_per_region = clients_per_region * shards;
  load.requests_per_client = BenchSmokeMode() ? 5 : 80;
  load.think_time = Millis(5);
  WorkloadFn workload = [](Rng& rng) { return ScalingRequest(rng); };
  LoadGenerator generator(&sim, &radical, DeploymentRegions(), workload, load);
  generator.Start();
  sim.Run();
  const Summary latency = generator.Overall().Summarize();
  const double duration_s = static_cast<double>(sim.Now()) / 1e6;
  ThroughputPoint point;
  point.shards = shards;
  point.batch_window_us = shards > 1 ? batch_window_us : 0;
  point.clients = clients_per_region * shards * static_cast<int>(DeploymentRegions().size());
  point.throughput_rps =
      duration_s > 0 ? static_cast<double>(generator.total_requests()) / duration_s : 0.0;
  point.offered_rps = point.throughput_rps;  // Closed loop: arrival == completion.
  point.aborts = radical.server().counters().Get("validate_fail");
  point.reexecutions = radical.server().counters().Get("reexecute");
  const uint64_t completed = generator.total_requests();
  const uint64_t good = completed > point.reexecutions ? completed - point.reexecutions : 0;
  point.goodput_rps = duration_s > 0 ? static_cast<double>(good) / duration_s : 0.0;
  point.p50_ms = latency.p50_ms;
  point.p90_ms = latency.p90_ms;
  point.p99_ms = latency.p99_ms;
  return point;
}

// Open loop: arrivals at a fixed rate regardless of completions — offered
// load at 1.2x each configuration's aggregate capacity, so every point runs
// slightly past saturation and the measured completion rate is the server's
// saturation throughput (the run drains its backlog before measuring).
// Requests go through the Client facade with retries and tracing off: a
// retry would double-count offered load, and per-request traces are pure
// overhead here.
ThroughputPoint MeasureOpenLoop(int shards, int64_t batch_window_us) {
  Simulator sim(9300 + static_cast<uint64_t>(shards));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalDeployment radical(&sim, &net, ScalingConfig(shards, batch_window_us),
                            DeploymentRegions());
  radical.RegisterFunction(ScalingWriteFunction());
  radical.RegisterFunction(ScalingReadFunction());
  SeedScalingKeys(&radical);
  radical.WarmCaches();

  const double offered_rps = 1.2 * 600.0 * shards;
  const SimDuration window = BenchSmokeMode() ? Millis(200) : Seconds(5);
  const SimDuration interarrival =
      static_cast<SimDuration>(1e6 / offered_rps);  // Microsecond virtual clock.
  RequestOptions options;
  options.retry = RetryPolicy{};
  options.retry->enabled = false;
  options.trace = false;
  uint64_t offered = 0;
  uint64_t completed = 0;
  LatencySampler sampler;
  Rng rng(42);
  const std::vector<Region>& regions = DeploymentRegions();
  for (SimDuration at = 0; at < window; at += interarrival) {
    const Region region = regions[rng.NextBelow(regions.size())];
    const RequestSpec spec = ScalingRequest(rng);
    ++offered;
    sim.Schedule(at, [&, region, spec] {
      const SimTime start = sim.Now();
      radical.client(region).Submit(Request{spec.function, spec.inputs}, options,
                                    [&, start](Outcome) {
                                      ++completed;
                                      sampler.Add(sim.Now() - start);
                                    });
    });
  }
  sim.Run();
  const Summary latency = sampler.Summarize();
  const double duration_s = static_cast<double>(sim.Now()) / 1e6;
  ThroughputPoint point;
  point.shards = shards;
  point.batch_window_us = shards > 1 ? batch_window_us : 0;
  point.clients = 0;
  point.offered_rps = offered_rps;
  point.throughput_rps = duration_s > 0 ? static_cast<double>(completed) / duration_s : 0.0;
  // Past saturation, completions alone overstate useful work: a completion
  // whose speculation was invalidated paid an abort + re-execution round.
  // Goodput counts only first-validation successes.
  point.aborts = radical.server().counters().Get("validate_fail");
  point.reexecutions = radical.server().counters().Get("reexecute");
  const uint64_t good = completed > point.reexecutions ? completed - point.reexecutions : 0;
  point.goodput_rps = duration_s > 0 ? static_cast<double>(good) / duration_s : 0.0;
  point.p50_ms = latency.p50_ms;
  point.p90_ms = latency.p90_ms;
  point.p99_ms = latency.p99_ms;
  (void)offered;
  return point;
}

// --- Overload-control saturation sweep ---------------------------------------

// Open-loop load at a fixed multiple of the singleton server's capacity,
// with overload control off (the historical unbounded-queue behaviour) or on
// (bounded admission queue + per-request deadlines). The uncontrolled server
// accepts everything and queues it: past the knee every admitted request
// pays the whole backlog in latency, and p99 grows without bound as the
// multiplier rises. The controlled server rejects at the door once the
// admission queue is full, so the work it does accept completes at its
// normal latency — goodput stays flat at capacity and p99 stays bounded by
// the queue limit, which is the entire point of the subsystem.
ThroughputPoint MeasureOverload(double multiplier, bool control) {
  Simulator sim(9500 + static_cast<uint64_t>(multiplier * 100.0) + (control ? 1 : 0));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  config.server.serving_capacity_rps = 600;
  if (control) {
    config.server.admission_queue_limit = 64;  // ~107 ms of backlog, max.
  }
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  radical.RegisterFunction(ScalingWriteFunction());
  radical.RegisterFunction(ScalingReadFunction());
  SeedScalingKeys(&radical);
  radical.WarmCaches();

  const double offered_rps = multiplier * 600.0;
  const SimDuration window = BenchSmokeMode() ? Millis(200) : Seconds(5);
  const SimDuration interarrival = static_cast<SimDuration>(1e6 / offered_rps);
  RequestOptions options;
  options.retry = RetryPolicy{};
  options.retry->enabled = false;  // Open loop: a retry double-counts load.
  options.trace = false;
  if (control) {
    // Wide enough that in-deadline work is never shed below the knee; the
    // bounded queue, not the deadline, is the primary control here.
    options.deadline = Millis(800);
  }
  uint64_t ok = 0;
  uint64_t rejected_done = 0;
  uint64_t deadline_done = 0;
  LatencySampler sampler;
  Rng rng(42);
  const std::vector<Region>& regions = DeploymentRegions();
  for (SimDuration at = 0; at < window; at += interarrival) {
    const Region region = regions[rng.NextBelow(regions.size())];
    const RequestSpec spec = ScalingRequest(rng);
    sim.Schedule(at, [&, region, spec] {
      const SimTime start = sim.Now();
      radical.client(region).Submit(Request{spec.function, spec.inputs}, options,
                                    [&, start](Outcome outcome) {
                                      if (outcome.ok()) {
                                        ++ok;
                                        sampler.Add(sim.Now() - start);
                                      } else if (outcome.status == RequestStatus::kRejected) {
                                        ++rejected_done;
                                      } else {
                                        ++deadline_done;
                                      }
                                    });
    });
  }
  sim.Run();
  const Summary latency = sampler.Summarize();
  const double duration_s = static_cast<double>(sim.Now()) / 1e6;
  ThroughputPoint point;
  point.shards = 1;
  point.batch_window_us = 0;
  point.clients = 0;
  point.offered_rps = offered_rps;
  point.overload_control = control;
  // Throughput counts only requests that produced a result — a rejection is
  // a completion for the client but not work done by the server.
  point.throughput_rps = duration_s > 0 ? static_cast<double>(ok) / duration_s : 0.0;
  point.aborts = radical.server().counters().Get("validate_fail");
  point.reexecutions = radical.server().counters().Get("reexecute");
  const uint64_t good = ok > point.reexecutions ? ok - point.reexecutions : 0;
  point.goodput_rps = duration_s > 0 ? static_cast<double>(good) / duration_s : 0.0;
  point.rejected = radical.server().counters().Get("rejected_overload");
  point.shed = radical.server().counters().Get("shed_total");
  point.deadline_exceeded = deadline_done;
  const obs::Gauge* peak = radical.server().counters().gauge("queue_depth_peak");
  point.queue_depth_peak = peak != nullptr && peak->value() > 0
                               ? static_cast<uint64_t>(peak->value())
                               : 0;
  point.p50_ms = latency.p50_ms;
  point.p90_ms = latency.p90_ms;
  point.p99_ms = latency.p99_ms;
  (void)rejected_done;
  return point;
}

void RunOverload(BenchReport* report) {
  std::printf("\nOverload control: open-loop saturation sweep, capacity 600 req/s, "
              "singleton server\n(off = unbounded queue; on = admission queue limit 64 + "
              "800 ms deadlines)\n\n");
  const std::vector<double> multipliers =
      BenchSmokeMode() ? std::vector<double>{0.8, 1.5}
                       : std::vector<double>{0.5, 0.8, 1.0, 1.2, 1.5, 2.0};
  const std::vector<int> widths = {8, 9, 12, 12, 10, 8, 10, 10, 10, 10};
  ThroughputCurve off{"open_loop_overload_uncontrolled", {}};
  ThroughputCurve on{"open_loop_overload_controlled", {}};
  for (const bool control : {false, true}) {
    std::printf("overload control %s:\n", control ? "ON" : "OFF");
    PrintTableHeader({"offered", "tput", "good req/s", "rejected", "shed", "queue",
                      "ddl_exc", "p50 ms", "p90 ms", "p99 ms"},
                     widths);
    for (const double multiplier : multipliers) {
      const ThroughputPoint p = MeasureOverload(multiplier, control);
      (control ? on : off).points.push_back(p);
      PrintTableRow({Ms(p.offered_rps, 0), Ms(p.throughput_rps, 0), Ms(p.goodput_rps, 0),
                     std::to_string(p.rejected), std::to_string(p.shed),
                     std::to_string(p.queue_depth_peak), std::to_string(p.deadline_exceeded),
                     Ms(p.p50_ms), Ms(p.p90_ms), Ms(p.p99_ms)},
                    widths);
    }
    PrintRule(widths);
    std::printf("\n");
  }
  std::printf(
      "Uncontrolled, every point past the knee pays the whole backlog in tail\n"
      "latency. Controlled, the admission queue is bounded: excess arrivals are\n"
      "rejected at the door with a retry-after hint, goodput holds at capacity,\n"
      "and p99 stays within the queue limit's worth of waiting.\n");
  report->AddCurve(std::move(off));
  report->AddCurve(std::move(on));
}

void RunScaling(const ScalingFlags& flags, BenchReport* report) {
  std::printf("\nSharded-server scaling: %llu req/s serving capacity per shard, "
              "batch window %lld us, uniform 90/10 read/rmw over %d keys\n"
              "(closed loop, weak scaling: %d clients/region per shard)\n\n",
              600ull, static_cast<long long>(flags.batch_window_us), kScalingKeys,
              flags.clients_per_region);
  const std::vector<int> widths = {7, 16, 9, 12, 12, 12, 8, 8, 10, 10, 10};
  PrintTableHeader({"shards", "window us", "clients", "offered", "tput req/s", "good req/s",
                    "aborts", "reexec", "p50 ms", "p90 ms", "p99 ms"},
                   widths);
  ThroughputCurve closed{"closed_loop_scaling", {}};
  for (const int shards : flags.shard_counts) {
    const ThroughputPoint p =
        MeasureClosedLoop(shards, flags.batch_window_us, flags.clients_per_region);
    closed.points.push_back(p);
    PrintTableRow({std::to_string(p.shards), std::to_string(p.batch_window_us),
                   std::to_string(p.clients), Ms(p.offered_rps, 0), Ms(p.throughput_rps, 0),
                   Ms(p.goodput_rps, 0), std::to_string(p.aborts),
                   std::to_string(p.reexecutions), Ms(p.p50_ms), Ms(p.p90_ms), Ms(p.p99_ms)},
                  widths);
  }
  PrintRule(widths);
  std::printf("\nOpen loop (fixed arrival rate at 1.2x aggregate capacity, retries off):\n\n");
  PrintTableHeader({"shards", "window us", "clients", "offered", "tput req/s", "good req/s",
                    "aborts", "reexec", "p50 ms", "p90 ms", "p99 ms"},
                   widths);
  ThroughputCurve open{"open_loop_scaling", {}};
  for (const int shards : flags.shard_counts) {
    const ThroughputPoint p = MeasureOpenLoop(shards, flags.batch_window_us);
    open.points.push_back(p);
    PrintTableRow({std::to_string(p.shards), std::to_string(p.batch_window_us), "-",
                   Ms(p.offered_rps, 0), Ms(p.throughput_rps, 0), Ms(p.goodput_rps, 0),
                   std::to_string(p.aborts), std::to_string(p.reexecutions), Ms(p.p50_ms),
                   Ms(p.p90_ms), Ms(p.p99_ms)},
                  widths);
  }
  PrintRule(widths);
  std::printf(
      "\nSaturation throughput scales with the shard count: each shard owns an\n"
      "independent admission queue, lock table, and intent table, and the batch\n"
      "window folds concurrent validations into one storage round.\n");
  report->AddCurve(std::move(closed));
  report->AddCurve(std::move(open));
}

ScalingFlags ParseFlags(int argc, char** argv) {
  ScalingFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      const int shards = std::atoi(arg + 9);
      if (shards >= 1) {
        flags.shard_counts = {shards};
      }
    } else if (std::strncmp(arg, "--batch-window-us=", 18) == 0) {
      flags.batch_window_us = std::atoll(arg + 18);
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      const int clients = std::atoi(arg + 10);
      if (clients >= 1) {
        flags.clients_per_region = clients;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
    }
  }
  return flags;
}

}  // namespace
}  // namespace radical

int main(int argc, char** argv) {
  const radical::ScalingFlags flags = radical::ParseFlags(argc, argv);
  radical::Run();
  radical::RunLinkQueueing();
  radical::BenchReport report("throughput_server");
  radical::RunScaling(flags, &report);
  radical::RunOverload(&report);
  const std::string path = report.Write();
  if (!path.empty()) {
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
