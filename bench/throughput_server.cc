// Server throughput (§5.3 discussion): "the only bottleneck Radical
// introduces is the singleton LVI server". This bench gives that claim a
// load-latency curve: with a finite serving capacity, end-to-end latency is
// flat until the offered load approaches the server's capacity, then
// queueing blows up the tail — the classic saturation knee. Below the knee,
// Radical's throughput equals the baseline's (the server adds no other
// limit), which is why the paper reports no separate throughput results.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/string_util.h"

namespace radical {
namespace {

struct LoadPoint {
  double offered_rps;
  Summary latency;
  uint64_t queued;
};

LoadPoint MeasureAtLoad(int clients_per_region, SimDuration think, uint64_t capacity_rps) {
  Simulator sim(8600 + static_cast<uint64_t>(clients_per_region));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  config.server.serving_capacity_rps = capacity_rps;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  const AppSpec app = MakeSocialApp();
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();
  LoadGeneratorOptions load;
  load.clients_per_region = clients_per_region;
  load.requests_per_client = 60;
  load.think_time = think;
  LoadGenerator generator(&sim, &radical, DeploymentRegions(), app.make_workload(), load);
  const SimTime start = sim.Now();
  generator.Start();
  sim.Run();
  LoadPoint point;
  point.latency = generator.Overall().Summarize();
  const double duration_s = ToMillis(sim.Now() - start) / 1000.0;
  point.offered_rps = duration_s > 0
                          ? static_cast<double>(generator.total_requests()) / duration_s
                          : 0.0;
  point.queued = radical.server().counters().Get("queued_arrivals");
  return point;
}

void Run() {
  constexpr uint64_t kCapacity = 600;  // Requests/second the singleton serves.
  std::printf("LVI server saturation: capacity %llu req/s, social media workload\n\n",
              static_cast<unsigned long long>(kCapacity));
  const std::vector<int> widths = {14, 11, 10, 10, 10, 12};
  PrintTableHeader({"clients total", "load req/s", "p50 ms", "p90 ms", "p99 ms",
                    "queued msgs"},
                   widths);
  // Closed-loop load sweep: more clients with shorter think times.
  const std::vector<std::pair<int, SimDuration>> points = {
      {4, Millis(500)},  {10, Millis(300)}, {20, Millis(150)},
      {30, Millis(60)},  {40, Millis(20)},  {50, Millis(5)},
  };
  for (const auto& [clients, think] : points) {
    const LoadPoint point = MeasureAtLoad(clients, think, kCapacity);
    PrintTableRow({std::to_string(clients * 5), Ms(point.offered_rps, 0),
                   Ms(point.latency.p50_ms), Ms(point.latency.p90_ms),
                   Ms(point.latency.p99_ms), std::to_string(point.queued)},
                  widths);
  }
  PrintRule(widths);
  std::printf(
      "\nShape: latency is flat while offered load stays below the server's\n"
      "capacity, then the queue builds and the tail explodes — the singleton LVI\n"
      "server is the bottleneck, and replicating it (§5.6) is the remedy.\n");
}

// Per-link queueing under constrained WAN bandwidth: rerun the heaviest load
// point with finite-bandwidth WAN links and report the fabric's per-channel
// queueing-delay percentiles — the links into the LVI server (near the
// primary in VA) carry every request and queue first.
void RunLinkQueueing() {
  constexpr uint64_t kWanBandwidth = 64 * 1024;  // 64 KiB/s per WAN link.
  std::printf("\nPer-link queueing at high load, WAN links capped at %llu KiB/s\n\n",
              static_cast<unsigned long long>(kWanBandwidth / 1024));
  Simulator sim(8700);
  NetworkOptions net_options;
  net_options.wan_bandwidth_bytes_per_sec = kWanBandwidth;
  Network net(&sim, LatencyMatrix::PaperDefault(), net_options);
  RadicalConfig config;
  config.server.serving_capacity_rps = 600;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  const AppSpec app = MakeSocialApp();
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();
  LoadGeneratorOptions load;
  load.clients_per_region = 40;
  load.requests_per_client = 60;
  load.think_time = Millis(20);
  LoadGenerator generator(&sim, &radical, DeploymentRegions(), app.make_workload(), load);
  generator.Start();
  sim.Run();
  const std::vector<int> link_widths = {26, 8, 12, 11, 11, 11};
  PrintTableHeader({"link", "msgs", "bytes", "queue p50", "queue p90", "queue p99"},
                   link_widths);
  net.fabric().ForEachChannel([&](const net::Channel& ch) {
    const net::LinkStats& stats = ch.stats();
    if (!ch.wan() || stats.queue_delay.empty() || stats.queue_delay.PercentileMs(99) <= 0.0) {
      return;
    }
    const std::string link = net.fabric().info(ch.from()).name + " -> " +
                             net.fabric().info(ch.to()).name;
    PrintTableRow({link, std::to_string(stats.messages_sent), std::to_string(stats.bytes_sent),
                   Ms(stats.queue_delay.PercentileMs(50)), Ms(stats.queue_delay.PercentileMs(90)),
                   Ms(stats.queue_delay.PercentileMs(99))},
                  link_widths);
  });
  PrintRule(link_widths);
  std::printf(
      "\nThe LVI server's response links queue hardest: responses carry fresh\n"
      "items for cache repair, so the server -> runtime direction moves more\n"
      "bytes than the requests. End-to-end p99 under the cap: %.1f ms.\n",
      generator.Overall().PercentileMs(99));
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  radical::RunLinkQueueing();
  return 0;
}
