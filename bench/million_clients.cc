// Parallel-core scaling: one million modeled clients across a partitioned
// deployment, the workload the single-threaded core cannot hold in one
// timeline at interactive speed.
//
// The world is split into 8 partitions (deployment regions cycled, the
// primary region on partition 0, as radical::PartitionMap pins it). Each
// partition hosts an equal slice of the clients as open-loop arrival
// processes: every request does local work on its own partition and, with
// the paper's cache-miss probability, a cross-partition LVI validation round
// trip to the primary partition — two mailbox hops whose delay is drawn at
// or above the WAN link's jitter floor (net::MinOneWayDelay), exactly the
// bound the conservative window protocol needs.
//
// The same seed runs at RADICAL_SIM_THREADS-style worker counts 1, 2, 4, 8;
// the bench asserts the merged metrics snapshot is byte-identical across all
// of them (the parallel core's headline guarantee) and exports a "parallel"
// BENCH section row per thread count: events fired, host events/sec, and
// speedup over the 1-thread run. Real speedup needs real cores: when the
// host has fewer than the requested workers the numbers are still measured
// and exported honestly, but the optional RADICAL_PARALLEL_SPEEDUP_FLOOR
// gate only applies where hardware_concurrency() can physically deliver it.
//
//   million_clients [--clients=N] [--requests=R]
//
// Defaults: 1,000,000 clients, 3 requests each; RADICAL_BENCH_SMOKE=1
// shrinks to 20,000 clients for CI smoke runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/network.h"
#include "src/sim/parallel.h"
#include "src/sim/region.h"

namespace radical {
namespace {

constexpr int kPartitions = 8;
constexpr double kValidateFraction = 0.3;  // Cache-miss / validation rate.

struct BenchState {
  ParallelSimulator* psim = nullptr;
  // Per partition: jitter-floor one-way delay to the primary partition
  // (>= the configured lookahead by construction).
  std::vector<SimDuration> to_primary;
};

Region PartitionRegion(int p) {
  const std::vector<Region>& regions = DeploymentRegions();
  return regions[static_cast<size_t>(p) % regions.size()];
}

void FinishRequest(BenchState* st, int p, int remaining, SimTime started);

void StartRequest(BenchState* st, int p, int remaining) {
  Simulator& sim = st->psim->partition(p);
  sim.metrics().GetCounter("client.requests")->Increment();
  const SimTime started = sim.Now();
  if (p != 0 && sim.rng().NextBool(kValidateFraction)) {
    // Validation round trip: client partition -> primary -> back. Both hops
    // draw a delay at or above the link's jitter floor.
    const SimDuration base = st->to_primary[static_cast<size_t>(p)];
    const SimDuration out = base + static_cast<SimDuration>(
                                       sim.rng().NextBelow(static_cast<uint64_t>(base / 2 + 1)));
    st->psim->Post(p, 0, sim.Now() + out, InlineTask([st, p, remaining, started] {
                     Simulator& primary = st->psim->partition(0);
                     primary.metrics().GetCounter("server.validations")->Increment();
                     const SimDuration base_back = st->to_primary[static_cast<size_t>(p)];
                     const SimDuration back =
                         base_back + static_cast<SimDuration>(primary.rng().NextBelow(
                                         static_cast<uint64_t>(base_back / 2 + 1)));
                     st->psim->Post(0, p, primary.Now() + back,
                                    InlineTask([st, p, remaining, started] {
                                      FinishRequest(st, p, remaining, started);
                                    }));
                   }));
    return;
  }
  // Cache hit: local execution only.
  const SimDuration local = 50 + static_cast<SimDuration>(sim.rng().NextBelow(500));
  sim.Schedule(local, [st, p, remaining, started] { FinishRequest(st, p, remaining, started); });
}

void FinishRequest(BenchState* st, int p, int remaining, SimTime started) {
  Simulator& sim = st->psim->partition(p);
  sim.metrics().GetHistogram("client.latency")->Record(sim.Now() - started);
  if (remaining > 0) {
    const SimDuration think = 1000 + static_cast<SimDuration>(sim.rng().NextBelow(100000));
    sim.Schedule(think, [st, p, remaining] { StartRequest(st, p, remaining - 1); });
  }
}

struct RunResult {
  double wall_seconds = 0.0;
  uint64_t events = 0;
  uint64_t cross_posted = 0;
  uint64_t overflows = 0;
  std::string snapshot;
};

RunResult RunOnce(uint64_t seed, int threads, uint64_t clients, int requests) {
  const LatencyMatrix latency = LatencyMatrix::PaperDefault();
  const NetworkOptions net_options;

  // Lookahead: the tightest cross-partition link is the jitter floor of the
  // closest region pair that ends up on different partitions (two partitions
  // can share a region when partitions > regions; their "WAN" is then the
  // intra-region hop).
  std::vector<SimDuration> to_primary(kPartitions, 0);
  SimDuration lookahead = 0;
  for (int p = 0; p < kPartitions; ++p) {
    net::LinkModel model;
    model.propagation_delay = latency.OneWay(PartitionRegion(p), PartitionRegion(0));
    model.jitter_stddev_frac = net_options.jitter_stddev_frac;
    model.min_delay_frac = net_options.min_delay_frac;
    to_primary[static_cast<size_t>(p)] = net::MinOneWayDelay(model);
    if (p > 0 && (lookahead == 0 || to_primary[static_cast<size_t>(p)] < lookahead)) {
      lookahead = to_primary[static_cast<size_t>(p)];
    }
  }

  ParallelSimulator::Options options;
  options.partitions = kPartitions;
  options.threads = threads;
  options.seed = seed;
  options.lookahead = lookahead;
  options.mailbox_capacity = 1 << 14;
  ParallelSimulator psim(options);
  BenchState st;
  st.psim = &psim;
  st.to_primary = to_primary;

  // Clients arrive spread over the first virtual second, an equal slice per
  // partition (remainder to the low partitions, deterministically).
  for (int p = 0; p < kPartitions; ++p) {
    const uint64_t slice = clients / kPartitions + (static_cast<uint64_t>(p) < clients % kPartitions ? 1 : 0);
    Simulator& sim = psim.partition(p);
    for (uint64_t c = 0; c < slice; ++c) {
      const SimTime start = static_cast<SimTime>(sim.rng().NextBelow(1'000'000));
      sim.ScheduleAt(start, [&st, p, requests] { StartRequest(&st, p, requests - 1); });
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  psim.Run();
  const auto wall_end = std::chrono::steady_clock::now();

  RunResult result;
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start).count();
  result.events = psim.total_events_fired();
  result.cross_posted = psim.cross_events_posted();
  result.overflows = psim.mailbox_overflows();
  result.snapshot = psim.MergedMetricsJson();
  return result;
}

struct Flags {
  uint64_t clients = 1'000'000;
  int requests = 3;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--clients=", 10) == 0) {
      const long long n = std::atoll(arg + 10);
      if (n >= 1) {
        flags.clients = static_cast<uint64_t>(n);
      }
    } else if (std::strncmp(arg, "--requests=", 11) == 0) {
      const int n = std::atoi(arg + 11);
      if (n >= 1) {
        flags.requests = n;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
    }
  }
  if (BenchSmokeMode()) {
    flags.clients = std::min<uint64_t>(flags.clients, 20'000);
    flags.requests = std::min(flags.requests, 2);
  }
  return flags;
}

}  // namespace
}  // namespace radical

int main(int argc, char** argv) {
  using namespace radical;
  const Flags flags = ParseFlags(argc, argv);
  const uint64_t seed = 2026;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Million-client parallel-core scaling: %llu clients x %d requests, "
              "%d partitions, host cores: %u\n\n",
              static_cast<unsigned long long>(flags.clients), flags.requests, kPartitions, hw);

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<int> widths = {8, 12, 12, 14, 10, 8};
  PrintTableHeader({"threads", "events", "cross", "events/sec", "speedup", "same"}, widths);

  BenchReport report("million_clients");
  std::string reference;
  double base_eps = 0.0;
  bool all_identical = true;
  std::vector<std::pair<int, double>> speedups;
  for (const int threads : thread_counts) {
    const RunResult r = RunOnce(seed, threads, flags.clients, flags.requests);
    const double eps = r.wall_seconds > 0 ? static_cast<double>(r.events) / r.wall_seconds : 0.0;
    if (threads == 1) {
      reference = r.snapshot;
      base_eps = eps;
    }
    const bool identical = r.snapshot == reference;
    all_identical = all_identical && identical;
    const double speedup = base_eps > 0 ? eps / base_eps : 0.0;
    speedups.emplace_back(threads, speedup);
    PrintTableRow({std::to_string(threads), std::to_string(r.events),
                   std::to_string(r.cross_posted), Ms(eps, 0), Ms(speedup, 2),
                   identical ? "yes" : "NO"},
                  widths);
    ParallelResult row;
    row.name = "million_clients";
    row.threads = threads;
    row.partitions = kPartitions;
    row.clients = flags.clients;
    row.events = r.events;
    row.wall_seconds = r.wall_seconds;
    row.events_per_sec = eps;
    row.speedup_vs_1thread = speedup;
    row.deterministic = identical;
    report.AddParallel(row);
    if (r.overflows > 0) {
      std::printf("  (mailbox ring overflowed %llu times at %d threads — size the ring up)\n",
                  static_cast<unsigned long long>(r.overflows), threads);
    }
  }
  PrintRule(widths);

  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFAIL: merged metrics snapshot diverged across thread counts — the "
                 "parallel core's determinism guarantee is broken.\n");
    return 1;
  }
  std::printf("\nMerged metrics snapshot byte-identical across all thread counts.\n");

  // Optional speedup gate, honest about the hardware: a floor is only
  // enforceable at thread counts the host can actually run in parallel.
  const char* floor_env = std::getenv("RADICAL_PARALLEL_SPEEDUP_FLOOR");
  if (floor_env != nullptr && floor_env[0] != '\0') {
    const double floor = std::atof(floor_env);
    bool enforced = false;
    for (const auto& [threads, speedup] : speedups) {
      if (threads == 1 || static_cast<unsigned>(threads) > hw) {
        continue;
      }
      enforced = true;
      if (speedup < floor) {
        std::fprintf(stderr,
                     "FAIL: speedup %.2fx at %d threads below floor %.2fx "
                     "(host has %u cores)\n",
                     speedup, threads, floor, hw);
        return 1;
      }
    }
    if (!enforced) {
      std::printf("speedup floor %.2fx not enforced: host has %u core(s), every "
                  "multi-thread point exceeds it\n",
                  floor, hw);
    } else {
      std::printf("speedup floor %.2fx satisfied\n", floor);
    }
  }

  const std::string path = report.Write();
  if (!path.empty()) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
