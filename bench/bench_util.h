// Shared harness for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper. RunApp
// spins up a fresh simulator + network + deployment of the requested kind,
// seeds the application, drives the paper's workload mix with closed-loop
// clients in every deployment location, and returns per-region/per-function
// latency summaries plus protocol counters.

#ifndef RADICAL_BENCH_BENCH_UTIL_H_
#define RADICAL_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/radical/deployment.h"
#include "src/radical/load_generator.h"

namespace radical {

enum class DeployKind {
  kRadical,   // Full Radical: caches + speculative execution + LVI.
  kBaseline,  // Primary-datacenter baseline (§5.3).
  kIdeal,     // Inconsistent local storage — the red line (§5.3).
};

const char* DeployKindName(DeployKind kind);

struct ExperimentResult {
  Summary overall;
  std::map<Region, Summary> per_region;
  std::map<std::string, Summary> per_function;
  std::map<std::pair<Region, std::string>, Summary> per_region_function;
  uint64_t total_requests = 0;
  // Radical-only protocol statistics (zeros otherwise).
  double validation_success_rate = 0.0;
  uint64_t reexecutions = 0;
  uint64_t lock_waits = 0;  // Acquisitions that queued at the lock table.
  uint64_t speculations = 0;
  uint64_t wan_bytes = 0;
  uint64_t lvi_requests = 0;
};

struct RunOptions {
  uint64_t seed = 1;
  int clients_per_region = 10;
  uint64_t requests_per_client = 200;
  // Closed-loop think time between a client's requests. Logical clients
  // model real users; the aggregate arrival rate (50 clients / ~4.2 s cycle
  // ≈ 12 req/s) keeps hot-key write-lock windows small, as in the paper's
  // deployment — validation success stays ~95% even at zipf 0.99.
  SimDuration think_time = Seconds(4);
  std::vector<Region> regions = DeploymentRegions();
  RadicalConfig config;
};

// Runs one application's workload against one deployment kind.
ExperimentResult RunApp(const AppSpec& app, DeployKind kind, const RunOptions& options = {});

// --- Table printing ----------------------------------------------------------

// Prints an aligned table: `widths[i]` column characters per cell.
void PrintTableHeader(const std::vector<std::string>& cols, const std::vector<int>& widths);
void PrintTableRow(const std::vector<std::string>& cells, const std::vector<int>& widths);
void PrintRule(const std::vector<int>& widths);

// "123.4" style fixed-point rendering of a millisecond quantity.
std::string Ms(double ms, int digits = 1);

}  // namespace radical

#endif  // RADICAL_BENCH_BENCH_UTIL_H_
