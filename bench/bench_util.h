// Shared harness for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper. RunApp
// spins up a fresh simulator + network + deployment of the requested kind,
// seeds the application, drives the paper's workload mix with closed-loop
// clients in every deployment location, and returns per-region/per-function
// latency summaries plus protocol counters.

#ifndef RADICAL_BENCH_BENCH_UTIL_H_
#define RADICAL_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/radical/deployment.h"
#include "src/radical/load_generator.h"

namespace radical {

enum class DeployKind {
  kRadical,   // Full Radical: caches + speculative execution + LVI.
  kBaseline,  // Primary-datacenter baseline (§5.3).
  kIdeal,     // Inconsistent local storage — the red line (§5.3).
};

const char* DeployKindName(DeployKind kind);

struct ExperimentResult {
  Summary overall;
  std::map<Region, Summary> per_region;
  std::map<std::string, Summary> per_function;
  std::map<std::pair<Region, std::string>, Summary> per_region_function;
  uint64_t total_requests = 0;
  // Radical-only protocol statistics (zeros otherwise).
  double validation_success_rate = 0.0;
  uint64_t reexecutions = 0;
  uint64_t lock_waits = 0;  // Acquisitions that queued at the lock table.
  uint64_t speculations = 0;
  uint64_t wan_bytes = 0;
  uint64_t lvi_requests = 0;
  // Simulator performance: virtual seconds covered by the run, host
  // wall-clock seconds spent inside sim.Run(), and simulated requests
  // completed per host second (throughput of the simulator itself).
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  double requests_per_wall_second = 0.0;
};

struct RunOptions {
  uint64_t seed = 1;
  int clients_per_region = 10;
  uint64_t requests_per_client = 200;
  // Closed-loop think time between a client's requests. Logical clients
  // model real users; the aggregate arrival rate (50 clients / ~4.2 s cycle
  // ≈ 12 req/s) keeps hot-key write-lock windows small, as in the paper's
  // deployment — validation success stays ~95% even at zipf 0.99.
  SimDuration think_time = Seconds(4);
  std::vector<Region> regions = DeploymentRegions();
  RadicalConfig config;
};

// Runs one application's workload against one deployment kind. When
// RADICAL_BENCH_SMOKE=1 is set in the environment the load is shrunk to a
// few requests per client so tools/check.sh can smoke every bench quickly;
// results are then meaningless as measurements but still structurally valid.
ExperimentResult RunApp(const AppSpec& app, DeployKind kind, const RunOptions& options = {});

// True when RADICAL_BENCH_SMOKE=1: benches may print a marker and skip
// expensive sweeps beyond what RunApp already shrinks.
bool BenchSmokeMode();

// --- BENCH_radical.json ------------------------------------------------------

// One measured point of a throughput curve (bench/throughput_server.cc): the
// server configuration it was taken at, the load offered, and what came back.
struct ThroughputPoint {
  int shards = 1;
  int64_t batch_window_us = 0;
  int clients = 0;            // Total logical clients (closed loop) or 0.
  double offered_rps = 0.0;   // Arrival rate presented to the server.
  double throughput_rps = 0.0;  // Completions per second over the run.
  // Completions per second whose *first* validation succeeded — work that
  // produced its answer without an abort/re-execution round trip. Under
  // saturation throughput can stay flat while goodput collapses into
  // re-execution churn; a point is only healthy when the two track.
  double goodput_rps = 0.0;
  uint64_t aborts = 0;          // Validation failures during this point.
  uint64_t reexecutions = 0;    // Re-executions during this point.
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  // --- Overload control (bench/throughput_server RunOverload) --------------
  // Whether the point ran with bounded admission + deadline shedding on; the
  // counters below are the server's backpressure activity during the point.
  bool overload_control = false;
  uint64_t rejected = 0;          // kOverloaded early rejections (admission).
  uint64_t shed = 0;              // Deadline sheds (admission + mid-pipeline).
  uint64_t deadline_exceeded = 0;  // Client-side deadline completions.
  uint64_t queue_depth_peak = 0;  // Peak admission-queue depth (requests).
  // --- Replicated locks (bench/sec5_6_replication multi-Raft curves) --------
  // Number of Raft lock groups the point ran with (0 = not a replicated
  // point; the group below is then omitted from the JSON).
  int raft_groups = 0;
  uint64_t leader_kills = 0;   // Group leaders crashed mid-run (fault sweep).
  double replies_pct = 0.0;    // Requests answered, percent of issued.
  bool linearizable = false;   // Wing&Gong check over the observed history.
  // --- Consistency spectrum (bench/consistency_spectrum session curves) -----
  // Whether the point measured the preview/final session path; the fields
  // below form an optional JSON group keyed on this flag (omitted when
  // false; tools/bench_json_check validates the group's ranges).
  bool session_point = false;
  double preview_gap_ms = 0.0;        // Mean final-minus-preview latency gap.
  double preview_p50_ms = 0.0;        // Preview-delivery latency median.
  double preview_accuracy_pct = 0.0;  // Previews whose value matched the final.
  uint64_t previews = 0;              // Previews delivered during the point.
  uint64_t failovers = 0;             // Session re-binds (PoP kills survived).
};

// A named throughput-vs-configuration curve, exported under "curves" in the
// report (schema_version 2; tools/bench_json_check validates the shape).
struct ThroughputCurve {
  std::string name;
  std::vector<ThroughputPoint> points;
};

// One hand-timed microbenchmark result (bench/micro_core.cc): host-CPU cost
// of a core simulator operation. Exported under "micro" in the report —
// this is simulator *implementation* performance (events per host second),
// not simulated-system latency, so it lives beside the experiments rather
// than inside one.
struct MicroResult {
  std::string name;
  uint64_t iterations = 0;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
};

// One parallel-core scaling measurement (bench/million_clients.cc): the same
// partitioned simulation run at `threads` workers. Exported under "parallel"
// in the report. events_per_sec is host-side simulator throughput;
// speedup_vs_1thread is this row's events_per_sec over the 1-thread row's
// (1.0 for the 1-thread row itself).
struct ParallelResult {
  std::string name;
  int threads = 1;
  int partitions = 1;
  uint64_t clients = 0;       // Modeled clients in the run.
  uint64_t events = 0;        // Events fired across all partitions.
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double speedup_vs_1thread = 0.0;
  bool deterministic = false;  // Output byte-identical to the 1-thread run.
};

// Machine-readable benchmark record. Each bench constructs one report, Add()s
// an entry per (app, deployment) experiment it ran, and calls Write() at the
// end. The file destination is the RADICAL_BENCH_JSON environment variable
// when set, otherwise "BENCH_radical.json" in the working directory; setting
// RADICAL_BENCH_JSON to the empty string disables the export.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void Add(const std::string& experiment_name, const ExperimentResult& result);
  void AddCurve(ThroughputCurve curve);
  void AddMicro(MicroResult result);
  void AddParallel(ParallelResult result);

  // Serializes the report (schema documented in docs/observability.md).
  std::string ToJson() const;

  // Writes ToJson() to the destination described above. Returns the path
  // written, or an empty string when disabled or on I/O failure.
  std::string Write() const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, ExperimentResult>> entries_;
  std::vector<ThroughputCurve> curves_;
  std::vector<MicroResult> micro_;
  std::vector<ParallelResult> parallel_;
};

// --- Table printing ----------------------------------------------------------

// Prints an aligned table: `widths[i]` column characters per cell.
void PrintTableHeader(const std::vector<std::string>& cols, const std::vector<int>& widths);
void PrintTableRow(const std::vector<std::string>& cells, const std::vector<int>& widths);
void PrintRule(const std::vector<int>& widths);

// "123.4" style fixed-point rendering of a millisecond quantity.
std::string Ms(double ms, int digits = 1);

}  // namespace radical

#endif  // RADICAL_BENCH_BENCH_UTIL_H_
