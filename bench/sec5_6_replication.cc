// §5.6: impact of replicating the LVI server. Locks move into a 3-node
// etcd-style Raft cluster across availability zones; acquisitions happen in
// series, so an LVI request with L locks pays roughly (idempotency-key write)
// + 2.3*L ms extra.
//
// Reproduces: (a) the per-lock acquisition latency through Raft (~2.3 ms),
// (b) the linear 3 + 2.3*L growth, and (c) the end-to-end effect on an LVI
// request's server-side processing with L locks.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/linearizability.h"
#include "src/func/builder.h"
#include "src/lvi/lock_service.h"

namespace radical {
namespace {

// Median latency of acquiring L locks through the Raft cluster — in series
// (the paper's implementation) or batched into one commit (the optimization
// the paper leaves as future work).
double MeasureAcquire(int num_locks, bool batched = false) {
  Simulator sim(600 + static_cast<uint64_t>(num_locks) + (batched ? 7777 : 0));
  ReplicatedLockService service(&sim, 3, RaftOptions{}, LocalMeshOptions{}, batched);
  if (!service.Bootstrap()) {
    return -1;
  }
  sim.RunFor(Millis(200));
  LatencySampler samples;
  for (int round = 0; round < 50; ++round) {
    std::vector<Key> keys;
    std::vector<LockMode> modes;
    for (int i = 0; i < num_locks; ++i) {
      keys.push_back("r" + std::to_string(round) + "-k" + std::to_string(i));
      modes.push_back(LockMode::kWrite);
    }
    const SimTime start = sim.Now();
    bool done = false;
    const ExecutionId exec = 1000 + static_cast<ExecutionId>(round);
    service.AcquireAll(exec, keys, modes, [&] {
      samples.Add(sim.Now() - start);
      done = true;
    });
    sim.RunFor(Millis(500));
    if (!done) {
      return -1;
    }
    service.ReleaseAll(exec);
    sim.RunFor(Millis(50));
  }
  return samples.MedianMs();
}

// End-to-end latency of one write-validating LVI request with L locks,
// singleton vs replicated server (server-side only: request handled locally).
double MeasureServerSide(int num_locks, bool replicated) {
  Simulator sim(700 + static_cast<uint64_t>(num_locks) * 2 + (replicated ? 1 : 0));
  Analyzer analyzer(&HostRegistry::Standard());
  Interpreter interp(&HostRegistry::Standard());
  FunctionRegistry registry(&analyzer);
  VersionedStore store;
  // A function writing L keys derived from its inputs.
  StmtList body;
  for (int i = 0; i < num_locks; ++i) {
    body.push_back(Write(Cat({C("k" + std::to_string(i) + ":"), In("id")}), In("id")));
  }
  body.push_back(Return(In("id")));
  registry.Register(Fn("writer", {"id"}, std::move(body)));

  std::unique_ptr<LocalLockService> local;
  std::unique_ptr<ReplicatedLockService> repl;
  LockService* locks = nullptr;
  if (replicated) {
    repl = std::make_unique<ReplicatedLockService>(&sim, 3);
    repl->Bootstrap();
    sim.RunFor(Millis(200));
    locks = repl.get();
  } else {
    local = std::make_unique<LocalLockService>(&sim);
    locks = local.get();
  }
  LviServerOptions options;
  LviServer server(&sim, &store, &registry, &interp, locks, options, replicated);

  LatencySampler samples;
  for (int round = 0; round < 50; ++round) {
    const std::string id = "x" + std::to_string(round);
    LviRequest request;
    request.exec_id = sim.NextId();
    request.origin = Region::kCA;
    request.function = "writer";
    request.inputs = {Value(id)};
    for (int i = 0; i < num_locks; ++i) {
      request.items.push_back(
          LviItem{"k" + std::to_string(i) + ":" + id, kMissingVersion, LockMode::kWrite});
    }
    std::sort(request.items.begin(), request.items.end(),
              [](const LviItem& a, const LviItem& b) { return a.key < b.key; });
    const SimTime start = sim.Now();
    const ExecutionId exec_id = request.exec_id;
    bool responded = false;
    server.HandleLviRequest(std::move(request), [&](LviResponse) {
      samples.Add(sim.Now() - start);
      responded = true;
    });
    sim.RunFor(Millis(300));
    if (!responded) {
      return -1;
    }
    WriteFollowup followup;
    followup.exec_id = exec_id;
    server.HandleFollowup(std::move(followup));
    sim.RunFor(Millis(100));
  }
  return samples.MedianMs();
}

// Multi-Raft scale-out: open-loop single-lock write cycles (unique keys, so
// no lock contention — the bottleneck is the groups' proposal capacity)
// against 1, 2 or 4 Raft lock groups. Each op costs two commits (acquire +
// release); with a finite per-leader proposal rate, one group saturates and
// sharding the groups recovers the offered load.
ThroughputPoint MeasureShardThroughput(int groups) {
  const double offered = 2000.0;
  const SimDuration warmup = Millis(300);
  const SimDuration window = BenchSmokeMode() ? Millis(400) : Seconds(2);
  const SimDuration drain = Seconds(1);
  const SimDuration goodput_deadline = Millis(25);

  Simulator sim(900 + static_cast<uint64_t>(groups));
  RaftOptions raft;
  raft.pre_vote = true;
  raft.proposal_capacity_rps = 1200;
  ReplicatedLockService service(&sim, 3, raft, LocalMeshOptions{}, /*batched=*/false, groups);
  ThroughputPoint point;
  point.shards = groups;
  point.raft_groups = groups;
  point.offered_rps = offered;
  if (!service.Bootstrap()) {
    return point;
  }
  sim.RunFor(warmup);

  const SimDuration gap = static_cast<SimDuration>(1e6 / offered);
  const int total = static_cast<int>(window / gap);
  // Offered keys round-robin across the lock groups. Picking keys by their
  // actual ShardOf (rather than trusting sequential names to hash evenly —
  // FNV-1a's high bits barely move across short same-prefix keys) keeps the
  // per-group load balanced, which is the quantity this curve varies: the
  // groups' aggregate proposal pipeline, not the router's hash spread.
  std::vector<Key> op_keys;
  op_keys.reserve(static_cast<size_t>(total));
  {
    uint64_t candidate = 0;
    for (int i = 0; i < total; ++i) {
      const int want = i % groups;
      Key key;
      do {
        key = "op" + std::to_string(candidate++);
      } while (service.router().ShardOf(key) != want);
      op_keys.push_back(std::move(key));
    }
  }
  struct Op {
    SimTime start = 0;
    SimTime done = -1;
  };
  std::vector<Op> ops(static_cast<size_t>(total));
  bool holds_on_grant = true;  // Grant really holds the lock at the leader.
  for (int i = 0; i < total; ++i) {
    sim.Schedule(static_cast<SimDuration>(i) * gap, [&, i] {
      const ExecutionId exec = 10000 + static_cast<ExecutionId>(i);
      const Key& key = op_keys[static_cast<size_t>(i)];
      ops[static_cast<size_t>(i)].start = sim.Now();
      service.AcquireAll(exec, {key}, {LockMode::kWrite}, [&, i, exec, key] {
        ops[static_cast<size_t>(i)].done = sim.Now();
        const LockStateMachine* machine =
            service.LeaderState(service.router().ShardOf(key));
        if (machine == nullptr || !machine->IsWriteHeldBy(key, exec)) {
          holds_on_grant = false;
        }
        service.ReleaseAll(exec);
      });
    });
  }
  const SimTime t0 = sim.Now();
  sim.RunFor(window + drain);

  LatencySampler latencies;
  int completed_in_window = 0;
  int good = 0;
  int completed = 0;
  for (const Op& op : ops) {
    if (op.done < 0) {
      continue;
    }
    ++completed;
    latencies.Add(op.done - op.start);
    if (op.done <= t0 + window) {
      ++completed_in_window;
      if (op.done - op.start <= goodput_deadline) {
        ++good;
      }
    }
  }
  const double window_s = static_cast<double>(window) / 1e6;
  point.throughput_rps = completed_in_window / window_s;
  point.goodput_rps = good / window_s;
  point.p50_ms = latencies.PercentileMs(50);
  point.p90_ms = latencies.PercentileMs(90);
  point.p99_ms = latencies.PercentileMs(99);
  point.replies_pct = total == 0 ? 0.0 : 100.0 * completed / total;
  // Uncontended unique-key locks: the per-grant holds-at-leader invariant is
  // the whole correctness story for this curve.
  point.linearizable = holds_on_grant;
  return point;
}

// Leader kill/rejoin sweep: a full deployment with replicated locks in
// `groups` Raft groups runs a register read/write mix while every group's
// leader is crashed mid-workload and restarted later. Every Invoke must be
// answered and the observed history must stay linearizable.
ThroughputPoint MeasureFailover(int groups) {
  const int total_ops = BenchSmokeMode() ? 24 : 80;
  const SimDuration issue_window = Seconds(6);
  Simulator sim(4200 + static_cast<uint64_t>(groups));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  config.server.replicated_shards = groups;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions(), /*replicated_locks=*/3);
  radical.RegisterFunction(Fn("reg_read", {"k"}, {
      Read("v", In("k")),
      Compute(Millis(5)),
      Return(V("v")),
  }));
  radical.RegisterFunction(Fn("reg_write", {"k", "v"}, {
      Write(In("k"), In("v")),
      Compute(Millis(5)),
      Return(In("v")),
  }));
  const std::vector<Key> keys = {"ka", "kb", "kc"};
  std::map<Key, Value> initials;
  for (const Key& key : keys) {
    radical.Seed(key, Value("v0"));
    initials[key] = Value("v0");
  }
  radical.WarmCaches();

  HistoryRecorder history;
  LatencySampler latencies;
  Rng rng(31337 + static_cast<uint64_t>(groups));
  int unique = 0;
  for (int i = 0; i < total_ops; ++i) {
    const Region region = DeploymentRegions()[rng.NextBelow(DeploymentRegions().size())];
    const bool is_write = rng.NextBool(0.5);
    const Key key = keys[rng.NextBelow(keys.size())];
    const SimDuration at = static_cast<SimDuration>(rng.NextBelow(issue_window));
    sim.Schedule(at, [&, region, is_write, key] {
      const SimTime invoke = sim.Now();
      if (is_write) {
        const Value value("w" + std::to_string(unique++));
        radical.Invoke(region, "reg_write", {Value(key), value}, [&, key, value, invoke](Value) {
          latencies.Add(sim.Now() - invoke);
          history.Record(HistoryOp{true, key, value, invoke, sim.Now()});
        });
      } else {
        radical.Invoke(region, "reg_read", {Value(key)}, [&, key, invoke](Value result) {
          latencies.Add(sim.Now() - invoke);
          history.Record(HistoryOp{false, key, std::move(result), invoke, sim.Now()});
        });
      }
    });
  }

  // Crash every group's leader mid-workload, staggered, and restart each a
  // second later: each group goes through a full leaderless spell and
  // re-election while requests are in flight.
  uint64_t kills = 0;
  for (int g = 0; g < groups; ++g) {
    const SimDuration at = Seconds(2) + static_cast<SimDuration>(g) * Millis(700);
    sim.Schedule(at, [&, g] {
      RaftCluster& cluster = radical.replicated_locks()->cluster(g);
      const NodeId leader = cluster.LeaderId();
      if (leader < 0) {
        return;
      }
      ++kills;
      cluster.CrashNode(leader);
      sim.Schedule(Seconds(1), [&cluster, leader] { cluster.RestartNode(leader); });
    });
  }
  sim.RunFor(issue_window + Seconds(8));

  ThroughputPoint point;
  point.shards = groups;
  point.raft_groups = groups;
  point.clients = total_ops;
  point.offered_rps = total_ops / (static_cast<double>(issue_window) / 1e6);
  point.throughput_rps = history.size() / (static_cast<double>(issue_window) / 1e6);
  point.goodput_rps = point.throughput_rps;
  point.p50_ms = latencies.PercentileMs(50);
  point.p90_ms = latencies.PercentileMs(90);
  point.p99_ms = latencies.PercentileMs(99);
  point.leader_kills = kills;
  point.replies_pct = 100.0 * static_cast<double>(history.size()) / total_ops;
  const LinearizabilityResult check = CheckHistory(history, initials);
  point.linearizable = check.linearizable;
  if (!check.linearizable) {
    std::printf("  !! history not linearizable: %s\n", check.violation.c_str());
  }
  return point;
}

void Run() {
  std::printf("Section 5.6: impact of replicating the LVI server (3-node Raft lock store)\n\n");
  std::printf("Per-acquisition latency through Raft (paper: ~2.3 ms per lock, serial):\n");
  const std::vector<int> widths = {7, 13, 15, 17};
  PrintTableHeader({"locks", "acquire ms", "ms per lock", "paper 2.3*L ms"}, widths);
  for (const int locks : {1, 2, 4, 8}) {
    const double ms = MeasureAcquire(locks);
    PrintTableRow({std::to_string(locks), Ms(ms), Ms(ms / locks, 2),
                   Ms(2.3 * locks, 1)},
                  widths);
  }
  PrintRule(widths);

  std::printf("\nBatched acquisition (one Raft commit per request — the future-work\n");
  std::printf("optimization the paper anticipates):\n");
  const std::vector<int> widths_b = {7, 12, 12, 13};
  PrintTableHeader({"locks", "serial ms", "batched ms", "batch saves"}, widths_b);
  for (const int locks : {1, 2, 4, 8}) {
    const double serial = MeasureAcquire(locks, /*batched=*/false);
    const double batched = MeasureAcquire(locks, /*batched=*/true);
    PrintTableRow({std::to_string(locks), Ms(serial), Ms(batched), Ms(serial - batched)},
                  widths_b);
  }
  PrintRule(widths_b);

  std::printf("\nServer-side LVI request latency, singleton vs replicated (write path):\n");
  const std::vector<int> widths2 = {7, 13, 14, 12, 19};
  PrintTableHeader({"locks", "singleton ms", "replicated ms", "added ms", "paper 3+2.3*L ms"},
                   widths2);
  for (const int locks : {1, 2, 4, 8}) {
    const double single = MeasureServerSide(locks, /*replicated=*/false);
    const double repl = MeasureServerSide(locks, /*replicated=*/true);
    PrintTableRow({std::to_string(locks), Ms(single), Ms(repl), Ms(repl - single),
                   Ms(3.0 + 2.3 * locks, 1)},
                  widths2);
  }
  PrintRule(widths2);
  std::printf(
      "\nShape: added latency grows linearly in the lock count at ~2.3 ms per lock\n"
      "plus ~3 ms for the idempotency key, matching the paper's 3 + 2.3*L model;\n"
      "the minimum beneficial execution time rises to ~16 + 2.3*L ms (~20 ms).\n");
}

// Multi-Raft curves: throughput vs lock-group count, and the leader
// kill/rejoin sweep. Returns false when a correctness gate fails (<100%
// replies or a non-linearizable history).
bool RunMultiRaft(BenchReport* report) {
  std::printf("\nMulti-Raft lock groups: open-loop single-lock ops vs group count\n");
  std::printf("(finite per-leader proposal rate; one group saturates, four do not):\n");
  const std::vector<int> widths = {8, 13, 15, 13, 9, 9};
  PrintTableHeader({"groups", "offered rps", "throughput rps", "goodput rps", "p50 ms", "p99 ms"},
                   widths);
  ThroughputCurve shard_curve;
  shard_curve.name = "replicated_shards";
  for (const int groups : {1, 2, 4}) {
    const ThroughputPoint p = MeasureShardThroughput(groups);
    PrintTableRow({std::to_string(groups), Ms(p.offered_rps, 0), Ms(p.throughput_rps, 0),
                   Ms(p.goodput_rps, 0), Ms(p.p50_ms), Ms(p.p99_ms)},
                  widths);
    shard_curve.points.push_back(p);
  }
  PrintRule(widths);
  report->AddCurve(shard_curve);

  std::printf("\nLeader kill/rejoin sweep (full deployment, every group's leader crashed\n");
  std::printf("mid-workload and restarted; history checked for linearizability):\n");
  const std::vector<int> widths_f = {8, 7, 12, 9, 9, 14};
  PrintTableHeader({"groups", "kills", "replies pct", "p50 ms", "p99 ms", "linearizable"},
                   widths_f);
  ThroughputCurve failover_curve;
  failover_curve.name = "replicated_failover";
  bool ok = true;
  for (const int groups : {1, 4}) {
    const ThroughputPoint p = MeasureFailover(groups);
    PrintTableRow({std::to_string(groups), std::to_string(p.leader_kills),
                   Ms(p.replies_pct, 1), Ms(p.p50_ms), Ms(p.p99_ms),
                   p.linearizable ? "yes" : "NO"},
                  widths_f);
    failover_curve.points.push_back(p);
    if (p.replies_pct < 100.0 || !p.linearizable) {
      ok = false;
    }
  }
  PrintRule(widths_f);
  report->AddCurve(failover_curve);
  if (!ok) {
    std::printf("\nFAIL: a failover point lost replies or violated linearizability.\n");
  }
  return ok;
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  radical::BenchReport report("sec5_6_replication");
  const bool ok = radical::RunMultiRaft(&report);
  report.Write();
  return ok ? 0 : 1;
}
