// §5.6: impact of replicating the LVI server. Locks move into a 3-node
// etcd-style Raft cluster across availability zones; acquisitions happen in
// series, so an LVI request with L locks pays roughly (idempotency-key write)
// + 2.3*L ms extra.
//
// Reproduces: (a) the per-lock acquisition latency through Raft (~2.3 ms),
// (b) the linear 3 + 2.3*L growth, and (c) the end-to-end effect on an LVI
// request's server-side processing with L locks.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/func/builder.h"
#include "src/lvi/lock_service.h"

namespace radical {
namespace {

// Median latency of acquiring L locks through the Raft cluster — in series
// (the paper's implementation) or batched into one commit (the optimization
// the paper leaves as future work).
double MeasureAcquire(int num_locks, bool batched = false) {
  Simulator sim(600 + static_cast<uint64_t>(num_locks) + (batched ? 7777 : 0));
  ReplicatedLockService service(&sim, 3, RaftOptions{}, LocalMeshOptions{}, batched);
  if (!service.Bootstrap()) {
    return -1;
  }
  sim.RunFor(Millis(200));
  LatencySampler samples;
  for (int round = 0; round < 50; ++round) {
    std::vector<Key> keys;
    std::vector<LockMode> modes;
    for (int i = 0; i < num_locks; ++i) {
      keys.push_back("r" + std::to_string(round) + "-k" + std::to_string(i));
      modes.push_back(LockMode::kWrite);
    }
    const SimTime start = sim.Now();
    bool done = false;
    const ExecutionId exec = 1000 + static_cast<ExecutionId>(round);
    service.AcquireAll(exec, keys, modes, [&] {
      samples.Add(sim.Now() - start);
      done = true;
    });
    sim.RunFor(Millis(500));
    if (!done) {
      return -1;
    }
    service.ReleaseAll(exec);
    sim.RunFor(Millis(50));
  }
  return samples.MedianMs();
}

// End-to-end latency of one write-validating LVI request with L locks,
// singleton vs replicated server (server-side only: request handled locally).
double MeasureServerSide(int num_locks, bool replicated) {
  Simulator sim(700 + static_cast<uint64_t>(num_locks) * 2 + (replicated ? 1 : 0));
  Analyzer analyzer(&HostRegistry::Standard());
  Interpreter interp(&HostRegistry::Standard());
  FunctionRegistry registry(&analyzer);
  VersionedStore store;
  // A function writing L keys derived from its inputs.
  StmtList body;
  for (int i = 0; i < num_locks; ++i) {
    body.push_back(Write(Cat({C("k" + std::to_string(i) + ":"), In("id")}), In("id")));
  }
  body.push_back(Return(In("id")));
  registry.Register(Fn("writer", {"id"}, std::move(body)));

  std::unique_ptr<LocalLockService> local;
  std::unique_ptr<ReplicatedLockService> repl;
  LockService* locks = nullptr;
  if (replicated) {
    repl = std::make_unique<ReplicatedLockService>(&sim, 3);
    repl->Bootstrap();
    sim.RunFor(Millis(200));
    locks = repl.get();
  } else {
    local = std::make_unique<LocalLockService>(&sim);
    locks = local.get();
  }
  LviServerOptions options;
  LviServer server(&sim, &store, &registry, &interp, locks, options, replicated);

  LatencySampler samples;
  for (int round = 0; round < 50; ++round) {
    const std::string id = "x" + std::to_string(round);
    LviRequest request;
    request.exec_id = sim.NextId();
    request.origin = Region::kCA;
    request.function = "writer";
    request.inputs = {Value(id)};
    for (int i = 0; i < num_locks; ++i) {
      request.items.push_back(
          LviItem{"k" + std::to_string(i) + ":" + id, kMissingVersion, LockMode::kWrite});
    }
    std::sort(request.items.begin(), request.items.end(),
              [](const LviItem& a, const LviItem& b) { return a.key < b.key; });
    const SimTime start = sim.Now();
    const ExecutionId exec_id = request.exec_id;
    bool responded = false;
    server.HandleLviRequest(std::move(request), [&](LviResponse) {
      samples.Add(sim.Now() - start);
      responded = true;
    });
    sim.RunFor(Millis(300));
    if (!responded) {
      return -1;
    }
    WriteFollowup followup;
    followup.exec_id = exec_id;
    server.HandleFollowup(std::move(followup));
    sim.RunFor(Millis(100));
  }
  return samples.MedianMs();
}

void Run() {
  std::printf("Section 5.6: impact of replicating the LVI server (3-node Raft lock store)\n\n");
  std::printf("Per-acquisition latency through Raft (paper: ~2.3 ms per lock, serial):\n");
  const std::vector<int> widths = {7, 13, 15, 17};
  PrintTableHeader({"locks", "acquire ms", "ms per lock", "paper 2.3*L ms"}, widths);
  for (const int locks : {1, 2, 4, 8}) {
    const double ms = MeasureAcquire(locks);
    PrintTableRow({std::to_string(locks), Ms(ms), Ms(ms / locks, 2),
                   Ms(2.3 * locks, 1)},
                  widths);
  }
  PrintRule(widths);

  std::printf("\nBatched acquisition (one Raft commit per request — the future-work\n");
  std::printf("optimization the paper anticipates):\n");
  const std::vector<int> widths_b = {7, 12, 12, 13};
  PrintTableHeader({"locks", "serial ms", "batched ms", "batch saves"}, widths_b);
  for (const int locks : {1, 2, 4, 8}) {
    const double serial = MeasureAcquire(locks, /*batched=*/false);
    const double batched = MeasureAcquire(locks, /*batched=*/true);
    PrintTableRow({std::to_string(locks), Ms(serial), Ms(batched), Ms(serial - batched)},
                  widths_b);
  }
  PrintRule(widths_b);

  std::printf("\nServer-side LVI request latency, singleton vs replicated (write path):\n");
  const std::vector<int> widths2 = {7, 13, 14, 12, 19};
  PrintTableHeader({"locks", "singleton ms", "replicated ms", "added ms", "paper 3+2.3*L ms"},
                   widths2);
  for (const int locks : {1, 2, 4, 8}) {
    const double single = MeasureServerSide(locks, /*replicated=*/false);
    const double repl = MeasureServerSide(locks, /*replicated=*/true);
    PrintTableRow({std::to_string(locks), Ms(single), Ms(repl), Ms(repl - single),
                   Ms(3.0 + 2.3 * locks, 1)},
                  widths2);
  }
  PrintRule(widths2);
  std::printf(
      "\nShape: added latency grows linearly in the lock count at ~2.3 ms per lock\n"
      "plus ~3 ms for the idempotency key, matching the paper's 3 + 2.3*L model;\n"
      "the minimum beneficial execution time rises to ~16 + 2.3*L ms (~20 ms).\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
