// Fault sweep: request-lifecycle robustness under message loss and server
// crashes. Sweeps a per-leg drop probability (LVI request, LVI response,
// write followup) crossed with an optional mid-run crash/recover of the LVI
// server, and reports the reply rate (every Invoke must be answered —
// RetryPolicy's contract), latency percentiles, and the retry machinery's
// footprint: retry amplification, degraded-mode direct fallbacks, and
// continuations dropped by the crash-epoch guard.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/func/builder.h"

namespace radical {
namespace {

struct SweepPoint {
  double loss;
  bool crash;
  uint64_t requests = 0;
  uint64_t replies = 0;
  Summary latency;
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t fallback_direct = 0;
  uint64_t stale_epoch_dropped = 0;
  uint64_t reexecutions = 0;
};

SweepPoint Measure(double loss, bool crash) {
  Simulator sim(9100 + static_cast<uint64_t>(loss * 1000) + (crash ? 7 : 0));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  config.server.intent_timeout = Millis(500);
  config.retry.request_timeout = Millis(300);
  config.retry.max_lvi_attempts = 3;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  radical.RegisterFunction(Fn("reg_read", {"k"}, {
      Read("v", In("k")),
      Compute(Millis(5)),
      Return(V("v")),
  }));
  radical.RegisterFunction(Fn("reg_write", {"k", "v"}, {
      Write(In("k"), In("v")),
      Compute(Millis(5)),
      Return(In("v")),
  }));
  const int kKeys = 8;
  for (int k = 0; k < kKeys; ++k) {
    radical.Seed("key" + std::to_string(k), Value("v0"));
  }
  radical.WarmCaches();

  if (loss > 0) {
    for (const net::MessageKind kind :
         {net::MessageKind::kLviRequest, net::MessageKind::kLviResponse,
          net::MessageKind::kWriteFollowup}) {
      net::DropRule rule;
      rule.kind = kind;
      rule.probability = loss;
      net.fabric().AddDropRule(rule);
    }
  }

  const int total_ops = 300;
  LatencySampler latency;
  Rng rng(5150);
  int replied = 0;
  for (int i = 0; i < total_ops; ++i) {
    const Region region = DeploymentRegions()[rng.NextBelow(DeploymentRegions().size())];
    const bool is_write = rng.NextBool(0.3);
    const std::string key = "key" + std::to_string(rng.NextBelow(kKeys));
    const SimDuration at = static_cast<SimDuration>(rng.NextBelow(Seconds(10)));
    sim.Schedule(at, [&, region, is_write, key, i] {
      const SimTime invoke = sim.Now();
      auto done = [&, invoke](Value) {
        latency.Add(sim.Now() - invoke);
        ++replied;
      };
      if (is_write) {
        radical.Invoke(region, "reg_write", {Value(key), Value("w" + std::to_string(i))},
                       std::move(done));
      } else {
        radical.Invoke(region, "reg_read", {Value(key)}, std::move(done));
      }
    });
  }

  if (crash) {
    // Crash while request pipelines are live (right after the 60th fresh
    // accept), recover 1.5 s later — arrivals in between are dropped at the
    // dead server and survive on the client's retry budget.
    while (radical.server().counters().Get("lvi_requests") < 60 && sim.Step()) {
    }
    radical.server().Crash();
    sim.Schedule(Millis(1500), [&] { radical.server().Recover(); });
  }
  sim.Run();

  SweepPoint point;
  point.loss = loss;
  point.crash = crash;
  point.latency = latency.Summarize();
  for (const Region region : DeploymentRegions()) {
    const obs::MetricsScope counters = radical.runtime(region).counters();
    point.requests += counters.Get("requests");
    point.replies += counters.Get("replies");
    point.retries += counters.Get("retries");
    point.timeouts += counters.Get("timeouts");
    point.fallback_direct += counters.Get("fallback_direct");
  }
  point.stale_epoch_dropped = radical.server().counters().Get("stale_epoch_dropped");
  point.reexecutions = radical.server().reexecutions();
  return point;
}

void Run() {
  std::printf("Fault sweep: per-leg loss x mid-run crash, 300 mixed ops over 10 s\n");
  std::printf("(loss applies independently to LVI requests, responses, and followups)\n\n");
  const std::vector<int> widths = {8, 7, 9, 9, 9, 10, 9, 10, 9, 8};
  PrintTableHeader({"loss", "crash", "replies", "p50 ms", "p99 ms", "retry/req",
                    "timeouts", "fallbacks", "stale", "reexec"},
                   widths);
  for (const bool crash : {false, true}) {
    for (const double loss : {0.0, 0.05, 0.1, 0.2}) {
      const SweepPoint p = Measure(loss, crash);
      char loss_buf[16];
      std::snprintf(loss_buf, sizeof(loss_buf), "%.0f%%", loss * 100);
      char amp_buf[16];
      std::snprintf(amp_buf, sizeof(amp_buf), "%.3f",
                    p.requests > 0 ? static_cast<double>(p.retries) /
                                         static_cast<double>(p.requests)
                                   : 0.0);
      PrintTableRow({loss_buf, crash ? "yes" : "no",
                     std::to_string(p.replies) + "/" + std::to_string(p.requests),
                     Ms(p.latency.p50_ms), Ms(p.latency.p99_ms), amp_buf,
                     std::to_string(p.timeouts), std::to_string(p.fallback_direct),
                     std::to_string(p.stale_epoch_dropped),
                     std::to_string(p.reexecutions)},
                    widths);
    }
    if (!crash) {
      PrintRule(widths);
    }
  }
  std::printf(
      "\nEvery cell must reply %d/%d: timeouts + bounded LVI retries, then the\n"
      "degraded direct path, guarantee an answer; the crash-epoch guard\n"
      "(stale) keeps pre-crash continuations from touching post-crash state.\n",
      300, 300);
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
