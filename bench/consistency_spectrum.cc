// Consistency spectrum (sessions, previews, PoP failover): what the
// radical::Session surface buys and what it costs.
//
// Two experiments, both exported as "curves" into BENCH_radical.json
// (session_point group; tools/bench_json_check validates the shape):
//
//  - preview_vs_final: each Table 1 application driven through sessions in
//    every deployment location. Previews (Correctables-style tentative
//    results from the speculative edge execution) must land strictly below
//    the validated finals on the latency axis at no cost in final
//    correctness — every request resolves to exactly one authoritative
//    final. preview_accuracy_pct reports how often the tentative value
//    already equaled the final one (the cache-hit/validation-success story
//    from a client's perspective).
//
//  - session_failover: closed-loop session readers against a key a writer
//    keeps advancing, with a mid-run PoP kill (Runtime::Crash) under the
//    busiest location. SwiftCloud-style re-binding must answer 100% of the
//    submitted requests with exactly one final each, and no session may
//    observe the key's value move backwards (monotonic reads) even though
//    the survivors' caches are colder than the dead PoP's floor.
//
// The binary exits nonzero when any of those invariants is violated, so
// tools/check.sh (CHECK_SESSION=1) can gate on it.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/func/builder.h"
#include "src/radical/session.h"

namespace radical {
namespace {

int g_violations = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "VIOLATION: %s\n", what);
    ++g_violations;
  }
}

// --- preview_vs_final --------------------------------------------------------

struct PreviewStats {
  uint64_t issued = 0;
  uint64_t finals = 0;
  uint64_t previews = 0;
  uint64_t preview_matches = 0;  // Preview value == final value.
  LatencySampler final_latency;
  LatencySampler preview_latency;
  // Finals restricted to previewed requests: the apples-to-apples population
  // for the preview-beats-final claim. (A request whose validation response
  // lands before its speculation finishes never previews — the preview would
  // arrive with or after the final — so the unrestricted populations differ.)
  LatencySampler final_of_previewed;
  LatencySampler gap;  // final - preview, per request that previewed.
};

ThroughputPoint MeasurePreviewCurve(const AppSpec& app, uint64_t seed) {
  Simulator sim(seed);
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalDeployment radical(&sim, &net, RadicalConfig{}, DeploymentRegions());
  app.RegisterAll(&radical);
  app.seed(&radical);
  radical.WarmCaches();
  WorkloadFn workload = app.make_workload();
  Rng rng(seed * 17 + 3);

  const uint64_t per_session = BenchSmokeMode() ? 6 : 60;
  auto stats = std::make_shared<PreviewStats>();

  // One closed-loop session per deployment location: the next request leaves
  // when the previous final lands (previews never advance the loop).
  for (const Region region : DeploymentRegions()) {
    auto session = std::make_shared<Session>(radical.OpenSession(region));
    auto submit_next = std::make_shared<std::function<void(uint64_t)>>();
    *submit_next = [&, session, submit_next, stats](uint64_t remaining) {
      if (remaining == 0) {
        return;
      }
      RequestSpec spec = workload(rng);
      ++stats->issued;
      const SimTime start = sim.Now();
      auto preview_at = std::make_shared<SimTime>(0);
      auto preview_value = std::make_shared<Value>();
      session->Submit(
          Request{spec.function, std::move(spec.inputs)},
          [&, submit_next, stats, start, preview_at, preview_value,
           remaining](Outcome outcome) {
            if (outcome.preview()) {
              *preview_at = sim.Now();
              *preview_value = outcome.result;
              stats->preview_latency.Add(sim.Now() - start);
              return;
            }
            ++stats->finals;
            stats->final_latency.Add(sim.Now() - start);
            if (*preview_at != 0) {
              ++stats->previews;
              stats->final_of_previewed.Add(sim.Now() - start);
              stats->gap.Add(sim.Now() - *preview_at);
              if (*preview_value == outcome.result) {
                ++stats->preview_matches;
              }
            }
            // Think, then the session's next request.
            const SimDuration think = Millis(50 + rng.NextBelow(100));
            sim.Schedule(think, [submit_next, remaining] {
              (*submit_next)(remaining - 1);
            });
          });
    };
    (*submit_next)(per_session);
  }
  sim.Run();

  Check(stats->finals == stats->issued,
        "preview_vs_final: every request must resolve to exactly one final");
  const Summary finals = stats->final_latency.Summarize();
  const Summary previews = stats->preview_latency.Summarize();
  Check(stats->previews > 0, "preview_vs_final: no previews delivered at all");
  // Strict per-request ordering: every preview beat its own final by a
  // positive margin, and the previewed population's medians reflect it.
  Check(stats->gap.count() == stats->previews && stats->gap.Summarize().min_ms > 0,
        "preview_vs_final: a preview failed to strictly precede its final");
  Check(previews.p50_ms < stats->final_of_previewed.Summarize().p50_ms,
        "preview_vs_final: preview latency must sit strictly below the final");

  ThroughputPoint point;
  point.session_point = true;
  point.offered_rps = 0.0;
  const double duration_s = static_cast<double>(sim.Now()) / 1e6;
  point.throughput_rps =
      duration_s > 0 ? static_cast<double>(stats->finals) / duration_s : 0.0;
  point.p50_ms = finals.p50_ms;
  point.p90_ms = finals.p90_ms;
  point.p99_ms = finals.p99_ms;
  point.preview_p50_ms = previews.p50_ms;
  point.preview_gap_ms = stats->gap.MeanMs();
  point.previews = stats->previews;
  point.preview_accuracy_pct =
      stats->previews > 0
          ? 100.0 * static_cast<double>(stats->preview_matches) /
                static_cast<double>(stats->previews)
          : 0.0;
  point.aborts = radical.server().counters().Get("validate_fail");
  return point;
}

// --- session_failover --------------------------------------------------------

struct FailoverStats {
  uint64_t issued = 0;
  uint64_t finals = 0;
  uint64_t previews = 0;
  uint64_t failovers = 0;
  uint64_t stale_upgrades = 0;
  LatencySampler final_latency;
  LatencySampler gap;  // final - preview, per read that previewed.
};

ThroughputPoint MeasureFailoverCurve(uint64_t seed) {
  Simulator sim(seed);
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  RadicalDeployment radical(&sim, &net, config, DeploymentRegions());
  radical.RegisterFunction(Fn("reg_read", {"k"}, {
      Read("v", In("k")),
      Return(V("v")),
  }));
  radical.RegisterFunction(Fn("reg_write", {"k", "v"}, {
      Write(In("k"), In("v")),
      Return(In("v")),
  }));
  radical.Seed("k", Value(static_cast<int64_t>(0)));
  radical.WarmCaches();

  const SimDuration window = BenchSmokeMode() ? Seconds(2) : Seconds(6);
  auto stats = std::make_shared<FailoverStats>();
  Rng rng(seed * 29 + 11);

  // Writer at the primary location advances the key through an increasing
  // sequence; session readers must never observe it move backwards.
  Client writer = radical.client(kPrimaryRegion);
  for (SimDuration at = Millis(40); at < window; at += Millis(40)) {
    const int64_t value = static_cast<int64_t>(at / Millis(40));
    sim.Schedule(at, [&, value] {
      writer.Submit(Request{"reg_write", {Value("k"), Value(value)}}, [](Outcome) {});
    });
  }

  // One closed-loop session reader per non-primary location.
  std::vector<std::shared_ptr<Session>> sessions;
  for (const Region region : DeploymentRegions()) {
    if (region == kPrimaryRegion) {
      continue;
    }
    auto session = std::make_shared<Session>(radical.OpenSession(region));
    sessions.push_back(session);
    auto last_seen = std::make_shared<int64_t>(-1);
    auto read_loop = std::make_shared<std::function<void()>>();
    *read_loop = [&, session, last_seen, read_loop] {
      if (sim.Now() >= window) {
        return;
      }
      ++stats->issued;
      const SimTime start = sim.Now();
      auto preview_at = std::make_shared<SimTime>(0);
      session->Submit(Request{"reg_read", {Value("k")}},
                      [&, session, last_seen, read_loop, start, preview_at](Outcome outcome) {
                        if (outcome.preview()) {
                          *preview_at = sim.Now();
                          return;
                        }
                        ++stats->finals;
                        stats->final_latency.Add(sim.Now() - start);
                        if (*preview_at != 0) {
                          stats->gap.Add(sim.Now() - *preview_at);
                        }
                        Check(outcome.executed(),
                              "session_failover: a session read ended unexecuted");
                        if (outcome.result.is_int()) {
                          const int64_t seen = outcome.result.AsInt();
                          Check(seen >= *last_seen,
                                "session_failover: monotonic-read violation");
                          *last_seen = seen;
                        }
                        const SimDuration think = Millis(40 + rng.NextBelow(60));
                        sim.Schedule(think, [read_loop] { (*read_loop)(); });
                      });
    };
    (*read_loop)();
  }

  // Mid-run PoP kill under a busy location; recover late so nothing re-binds
  // back before the window closes.
  sim.Schedule(window / 2, [&] { radical.CrashRuntime(Region::kCA); });
  sim.Schedule(window, [&] { radical.RecoverRuntime(Region::kCA); });
  sim.Run();

  for (const auto& session : sessions) {
    stats->failovers += session->failovers();
    stats->previews += session->previews();
    stats->stale_upgrades += session->stale_upgrades();
    Check(session->unacked() == 0, "session_failover: request left unanswered");
  }
  Check(stats->finals == stats->issued,
        "session_failover: reply rate must be 100% across the PoP kill");
  Check(stats->failovers > 0, "session_failover: the kill must hit a live session");

  ThroughputPoint point;
  point.session_point = true;
  const Summary finals = stats->final_latency.Summarize();
  point.p50_ms = finals.p50_ms;
  point.p90_ms = finals.p90_ms;
  point.p99_ms = finals.p99_ms;
  const double duration_s = static_cast<double>(sim.Now()) / 1e6;
  point.throughput_rps =
      duration_s > 0 ? static_cast<double>(stats->finals) / duration_s : 0.0;
  point.replies_pct = stats->issued > 0
                          ? 100.0 * static_cast<double>(stats->finals) /
                                static_cast<double>(stats->issued)
                          : 0.0;
  point.failovers = stats->failovers;
  point.previews = stats->previews;
  point.preview_gap_ms = stats->gap.MeanMs();
  point.preview_accuracy_pct = 100.0;  // Gated by the monotonic check above.
  return point;
}

void Run() {
  std::printf("Consistency spectrum: previews vs finals, sessions across a PoP kill\n\n");
  BenchReport report("consistency_spectrum");

  const std::vector<int> widths = {10, 9, 12, 10, 10, 11, 10};
  PrintTableHeader({"app", "prev p50", "final p50", "gap ms", "accuracy", "previews", "aborts"},
                   widths);
  ThroughputCurve preview_curve;
  preview_curve.name = "preview_vs_final";
  uint64_t seed = 7100;
  for (const AppSpec& app : AllApps()) {
    ThroughputPoint p = MeasurePreviewCurve(app, seed++);
    char acc[16];
    std::snprintf(acc, sizeof(acc), "%.1f%%", p.preview_accuracy_pct);
    PrintTableRow({app.name, Ms(p.preview_p50_ms), Ms(p.p50_ms), Ms(p.preview_gap_ms), acc,
                   std::to_string(p.previews), std::to_string(p.aborts)},
                  widths);
    preview_curve.points.push_back(p);
  }
  report.AddCurve(preview_curve);

  std::printf("\nSession failover (mid-run PoP kill under the kCA sessions):\n");
  ThroughputCurve failover_curve;
  failover_curve.name = "session_failover";
  ThroughputPoint f = MeasureFailoverCurve(7300);
  std::printf("  replies: %.1f%%  failovers: %llu  previews: %llu  final p50: %s ms\n",
              f.replies_pct, static_cast<unsigned long long>(f.failovers),
              static_cast<unsigned long long>(f.previews), Ms(f.p50_ms).c_str());
  failover_curve.points.push_back(f);
  report.AddCurve(failover_curve);

  const std::string path = report.Write();
  if (!path.empty()) {
    std::printf("\nwrote %s\n", path.c_str());
  }
  std::printf("\nPreviews answer at edge-execution latency; finals stay linearizable;\n"
              "sessions ride out a PoP kill with every request answered exactly once\n"
              "and reads never moving backwards.\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  if (radical::g_violations > 0) {
    std::fprintf(stderr, "%d consistency-spectrum violation(s)\n", radical::g_violations);
    return 1;
  }
  return 0;
}
