// §5.5 sensitivity: how Radical's benefit depends on function execution
// time. Sweeps a synthetic one-read handler from 5 ms to 400 ms in two
// locations (CA: 74 ms lat_nu<->ns, JP: 146 ms) and reports Radical vs the
// baseline vs the ideal.
//
// Paper shapes: (a) when execution exceeds lat_nu<->ns the full round trip
// is hidden and the benefit equals the RTT; (b) below it the benefit is
// proportional to execution time; (c) even ~13-20 ms functions come out at
// worst within a few ms of running near storage (the ~20 ms threshold with
// the replicated server, §5.6).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/func/builder.h"

namespace radical {
namespace {

FunctionDef SyntheticFn(SimDuration exec) {
  return Fn("probe", {"k"}, {
      Read("v", In("k")),
      Compute(exec),
      Return(V("v")),
  });
}

struct Point {
  double radical_ms;
  double baseline_ms;
  double ideal_ms;
};

Point Measure(Region region, SimDuration exec) {
  Simulator sim(91 + static_cast<uint64_t>(exec));
  Network net(&sim, LatencyMatrix::PaperDefault());
  RadicalConfig config;
  RadicalDeployment radical(&sim, &net, config, {region});
  PrimaryBaselineDeployment baseline(&sim, &net, config);
  LocalIdealDeployment ideal(&sim, config, {region});
  for (AppService* service :
       std::initializer_list<AppService*>{&radical, &baseline, &ideal}) {
    service->RegisterFunction(SyntheticFn(exec));
    service->Seed("k", Value("v"));
  }
  radical.WarmCaches();
  auto run = [&](AppService* service) {
    LatencySampler samples;
    for (int i = 0; i < 200; ++i) {
      const SimTime start = sim.Now();
      bool done = false;
      service->Invoke(region, "probe", {Value("k")}, [&](Value) {
        samples.Add(sim.Now() - start);
        done = true;
      });
      sim.Run();
      if (!done) {
        break;
      }
    }
    return samples.MedianMs();
  };
  return Point{run(&radical), run(&baseline), run(&ideal)};
}

void Run() {
  std::printf("Section 5.5 sensitivity: Radical benefit vs function execution time\n\n");
  const std::vector<SimDuration> execs = {Millis(5),   Millis(13),  Millis(20),  Millis(50),
                                          Millis(74),  Millis(100), Millis(146), Millis(200),
                                          Millis(300), Millis(400)};
  for (const Region region : {Region::kCA, Region::kJP}) {
    std::printf("Location %s (lat_nu<->ns = %s ms):\n", RegionName(region),
                Ms(ToMillis(LviLinkRtt(LatencyMatrix::PaperDefault(), region, kPrimaryRegion)),
                   0)
                    .c_str());
    const std::vector<int> widths = {9, 10, 10, 10, 11, 13};
    PrintTableHeader({"exec ms", "radical", "baseline", "ideal", "benefit ms", "rtt hidden%"},
                     widths);
    for (const SimDuration exec : execs) {
      const Point p = Measure(region, exec);
      const double benefit = p.baseline_ms - p.radical_ms;
      const double rtt_ms =
          ToMillis(LviLinkRtt(LatencyMatrix::PaperDefault(), region, kPrimaryRegion));
      PrintTableRow({Ms(ToMillis(exec), 0), Ms(p.radical_ms), Ms(p.baseline_ms),
                     Ms(p.ideal_ms), Ms(benefit), FormatDouble(100.0 * benefit / rtt_ms, 0)},
                    widths);
    }
    PrintRule(widths);
    std::printf("\n");
  }
  std::printf(
      "Shape: the benefit saturates at ~lat_nu<->ns once execution time exceeds the\n"
      "round trip; short functions gain little but never lose more than a few ms.\n");
}

}  // namespace
}  // namespace radical

int main() {
  radical::Run();
  return 0;
}
