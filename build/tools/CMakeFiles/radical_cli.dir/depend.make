# Empty dependencies file for radical_cli.
# This may be replaced when dependencies are built.
