file(REMOVE_RECURSE
  "CMakeFiles/radical_cli.dir/radical_cli.cc.o"
  "CMakeFiles/radical_cli.dir/radical_cli.cc.o.d"
  "radical_cli"
  "radical_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
