# Empty compiler generated dependencies file for sec5_6_replication.
# This may be replaced when dependencies are built.
