file(REMOVE_RECURSE
  "CMakeFiles/sec5_6_replication.dir/sec5_6_replication.cc.o"
  "CMakeFiles/sec5_6_replication.dir/sec5_6_replication.cc.o.d"
  "sec5_6_replication"
  "sec5_6_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_6_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
