# Empty compiler generated dependencies file for fig6_function_latency.
# This may be replaced when dependencies are built.
