file(REMOVE_RECURSE
  "CMakeFiles/sec5_5_sensitivity.dir/sec5_5_sensitivity.cc.o"
  "CMakeFiles/sec5_5_sensitivity.dir/sec5_5_sensitivity.cc.o.d"
  "sec5_5_sensitivity"
  "sec5_5_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_5_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
