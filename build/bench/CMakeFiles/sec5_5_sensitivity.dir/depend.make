# Empty dependencies file for sec5_5_sensitivity.
# This may be replaced when dependencies are built.
