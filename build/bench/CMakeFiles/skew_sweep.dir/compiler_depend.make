# Empty compiler generated dependencies file for skew_sweep.
# This may be replaced when dependencies are built.
