file(REMOVE_RECURSE
  "CMakeFiles/skew_sweep.dir/skew_sweep.cc.o"
  "CMakeFiles/skew_sweep.dir/skew_sweep.cc.o.d"
  "skew_sweep"
  "skew_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
