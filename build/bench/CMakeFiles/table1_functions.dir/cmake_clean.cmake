file(REMOVE_RECURSE
  "CMakeFiles/table1_functions.dir/table1_functions.cc.o"
  "CMakeFiles/table1_functions.dir/table1_functions.cc.o.d"
  "table1_functions"
  "table1_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
