file(REMOVE_RECURSE
  "CMakeFiles/sec5_7_cost.dir/sec5_7_cost.cc.o"
  "CMakeFiles/sec5_7_cost.dir/sec5_7_cost.cc.o.d"
  "sec5_7_cost"
  "sec5_7_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_7_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
