# Empty compiler generated dependencies file for sec5_7_cost.
# This may be replaced when dependencies are built.
