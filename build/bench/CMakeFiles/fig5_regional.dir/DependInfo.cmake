
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_regional.cc" "bench/CMakeFiles/fig5_regional.dir/fig5_regional.cc.o" "gcc" "bench/CMakeFiles/fig5_regional.dir/fig5_regional.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/radical_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/radical_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/radical/CMakeFiles/radical_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lvi/CMakeFiles/radical_lvi.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/radical_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/radical_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/radical_func.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/radical_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radical_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radical_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
