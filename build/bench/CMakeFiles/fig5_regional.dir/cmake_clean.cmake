file(REMOVE_RECURSE
  "CMakeFiles/fig5_regional.dir/fig5_regional.cc.o"
  "CMakeFiles/fig5_regional.dir/fig5_regional.cc.o.d"
  "fig5_regional"
  "fig5_regional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_regional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
