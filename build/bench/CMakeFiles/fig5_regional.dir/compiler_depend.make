# Empty compiler generated dependencies file for fig5_regional.
# This may be replaced when dependencies are built.
