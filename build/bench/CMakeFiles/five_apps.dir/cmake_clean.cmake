file(REMOVE_RECURSE
  "CMakeFiles/five_apps.dir/five_apps.cc.o"
  "CMakeFiles/five_apps.dir/five_apps.cc.o.d"
  "five_apps"
  "five_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/five_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
