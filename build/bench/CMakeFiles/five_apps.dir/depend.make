# Empty dependencies file for five_apps.
# This may be replaced when dependencies are built.
