file(REMOVE_RECURSE
  "CMakeFiles/table2_rtt.dir/table2_rtt.cc.o"
  "CMakeFiles/table2_rtt.dir/table2_rtt.cc.o.d"
  "table2_rtt"
  "table2_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
