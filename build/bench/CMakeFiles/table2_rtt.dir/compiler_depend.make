# Empty compiler generated dependencies file for table2_rtt.
# This may be replaced when dependencies are built.
