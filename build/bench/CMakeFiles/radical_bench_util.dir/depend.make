# Empty dependencies file for radical_bench_util.
# This may be replaced when dependencies are built.
