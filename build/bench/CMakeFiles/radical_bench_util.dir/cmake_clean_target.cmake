file(REMOVE_RECURSE
  "libradical_bench_util.a"
)
