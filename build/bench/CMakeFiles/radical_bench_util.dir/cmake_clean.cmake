file(REMOVE_RECURSE
  "CMakeFiles/radical_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/radical_bench_util.dir/bench_util.cc.o.d"
  "libradical_bench_util.a"
  "libradical_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
