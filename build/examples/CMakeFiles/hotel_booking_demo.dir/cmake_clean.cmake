file(REMOVE_RECURSE
  "CMakeFiles/hotel_booking_demo.dir/hotel_booking_demo.cpp.o"
  "CMakeFiles/hotel_booking_demo.dir/hotel_booking_demo.cpp.o.d"
  "hotel_booking_demo"
  "hotel_booking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_booking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
