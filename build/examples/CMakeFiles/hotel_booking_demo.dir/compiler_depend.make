# Empty compiler generated dependencies file for hotel_booking_demo.
# This may be replaced when dependencies are built.
