# Empty dependencies file for social_media_demo.
# This may be replaced when dependencies are built.
