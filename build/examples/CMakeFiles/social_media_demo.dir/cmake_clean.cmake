file(REMOVE_RECURSE
  "CMakeFiles/social_media_demo.dir/social_media_demo.cpp.o"
  "CMakeFiles/social_media_demo.dir/social_media_demo.cpp.o.d"
  "social_media_demo"
  "social_media_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_media_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
