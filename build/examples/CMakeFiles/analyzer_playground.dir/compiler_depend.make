# Empty compiler generated dependencies file for analyzer_playground.
# This may be replaced when dependencies are built.
