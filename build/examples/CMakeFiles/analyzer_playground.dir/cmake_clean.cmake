file(REMOVE_RECURSE
  "CMakeFiles/analyzer_playground.dir/analyzer_playground.cpp.o"
  "CMakeFiles/analyzer_playground.dir/analyzer_playground.cpp.o.d"
  "analyzer_playground"
  "analyzer_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
