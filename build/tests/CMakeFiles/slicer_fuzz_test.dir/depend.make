# Empty dependencies file for slicer_fuzz_test.
# This may be replaced when dependencies are built.
