file(REMOVE_RECURSE
  "CMakeFiles/slicer_fuzz_test.dir/slicer_fuzz_test.cc.o"
  "CMakeFiles/slicer_fuzz_test.dir/slicer_fuzz_test.cc.o.d"
  "slicer_fuzz_test"
  "slicer_fuzz_test.pdb"
  "slicer_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slicer_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
