# Empty dependencies file for replicated_locks_test.
# This may be replaced when dependencies are built.
