file(REMOVE_RECURSE
  "CMakeFiles/replicated_locks_test.dir/replicated_locks_test.cc.o"
  "CMakeFiles/replicated_locks_test.dir/replicated_locks_test.cc.o.d"
  "replicated_locks_test"
  "replicated_locks_test.pdb"
  "replicated_locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
