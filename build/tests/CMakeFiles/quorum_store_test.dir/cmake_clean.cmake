file(REMOVE_RECURSE
  "CMakeFiles/quorum_store_test.dir/quorum_store_test.cc.o"
  "CMakeFiles/quorum_store_test.dir/quorum_store_test.cc.o.d"
  "quorum_store_test"
  "quorum_store_test.pdb"
  "quorum_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
