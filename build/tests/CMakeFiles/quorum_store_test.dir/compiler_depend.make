# Empty compiler generated dependencies file for quorum_store_test.
# This may be replaced when dependencies are built.
