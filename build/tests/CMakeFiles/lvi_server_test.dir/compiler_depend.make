# Empty compiler generated dependencies file for lvi_server_test.
# This may be replaced when dependencies are built.
