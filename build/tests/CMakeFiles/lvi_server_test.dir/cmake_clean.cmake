file(REMOVE_RECURSE
  "CMakeFiles/lvi_server_test.dir/lvi_server_test.cc.o"
  "CMakeFiles/lvi_server_test.dir/lvi_server_test.cc.o.d"
  "lvi_server_test"
  "lvi_server_test.pdb"
  "lvi_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvi_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
