# Empty compiler generated dependencies file for five_apps_test.
# This may be replaced when dependencies are built.
