file(REMOVE_RECURSE
  "CMakeFiles/five_apps_test.dir/five_apps_test.cc.o"
  "CMakeFiles/five_apps_test.dir/five_apps_test.cc.o.d"
  "five_apps_test"
  "five_apps_test.pdb"
  "five_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/five_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
