# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/quorum_store_test[1]_include.cmake")
include("/root/repo/build/tests/func_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/lock_table_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/replicated_locks_test[1]_include.cmake")
include("/root/repo/build/tests/lvi_server_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/slicer_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/five_apps_test[1]_include.cmake")
include("/root/repo/build/tests/latency_model_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_edge_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
