# Empty dependencies file for radical_runtime.
# This may be replaced when dependencies are built.
