file(REMOVE_RECURSE
  "CMakeFiles/radical_runtime.dir/deployment.cc.o"
  "CMakeFiles/radical_runtime.dir/deployment.cc.o.d"
  "CMakeFiles/radical_runtime.dir/load_generator.cc.o"
  "CMakeFiles/radical_runtime.dir/load_generator.cc.o.d"
  "CMakeFiles/radical_runtime.dir/runtime.cc.o"
  "CMakeFiles/radical_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/radical_runtime.dir/trace.cc.o"
  "CMakeFiles/radical_runtime.dir/trace.cc.o.d"
  "libradical_runtime.a"
  "libradical_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
