file(REMOVE_RECURSE
  "libradical_runtime.a"
)
