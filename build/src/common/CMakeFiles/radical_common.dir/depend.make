# Empty dependencies file for radical_common.
# This may be replaced when dependencies are built.
