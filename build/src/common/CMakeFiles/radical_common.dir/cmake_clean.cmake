file(REMOVE_RECURSE
  "CMakeFiles/radical_common.dir/logging.cc.o"
  "CMakeFiles/radical_common.dir/logging.cc.o.d"
  "CMakeFiles/radical_common.dir/rng.cc.o"
  "CMakeFiles/radical_common.dir/rng.cc.o.d"
  "CMakeFiles/radical_common.dir/stats.cc.o"
  "CMakeFiles/radical_common.dir/stats.cc.o.d"
  "CMakeFiles/radical_common.dir/string_util.cc.o"
  "CMakeFiles/radical_common.dir/string_util.cc.o.d"
  "CMakeFiles/radical_common.dir/value.cc.o"
  "CMakeFiles/radical_common.dir/value.cc.o.d"
  "libradical_common.a"
  "libradical_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
