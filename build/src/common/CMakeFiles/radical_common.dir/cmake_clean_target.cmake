file(REMOVE_RECURSE
  "libradical_common.a"
)
