# Empty dependencies file for radical_apps.
# This may be replaced when dependencies are built.
