file(REMOVE_RECURSE
  "libradical_apps.a"
)
