file(REMOVE_RECURSE
  "CMakeFiles/radical_apps.dir/app_spec.cc.o"
  "CMakeFiles/radical_apps.dir/app_spec.cc.o.d"
  "CMakeFiles/radical_apps.dir/danbooru.cc.o"
  "CMakeFiles/radical_apps.dir/danbooru.cc.o.d"
  "CMakeFiles/radical_apps.dir/discourse.cc.o"
  "CMakeFiles/radical_apps.dir/discourse.cc.o.d"
  "CMakeFiles/radical_apps.dir/forum.cc.o"
  "CMakeFiles/radical_apps.dir/forum.cc.o.d"
  "CMakeFiles/radical_apps.dir/hotel.cc.o"
  "CMakeFiles/radical_apps.dir/hotel.cc.o.d"
  "CMakeFiles/radical_apps.dir/social.cc.o"
  "CMakeFiles/radical_apps.dir/social.cc.o.d"
  "libradical_apps.a"
  "libradical_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
