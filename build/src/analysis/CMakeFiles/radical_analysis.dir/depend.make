# Empty dependencies file for radical_analysis.
# This may be replaced when dependencies are built.
