file(REMOVE_RECURSE
  "libradical_analysis.a"
)
