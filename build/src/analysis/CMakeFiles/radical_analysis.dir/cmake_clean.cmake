file(REMOVE_RECURSE
  "CMakeFiles/radical_analysis.dir/analyzer.cc.o"
  "CMakeFiles/radical_analysis.dir/analyzer.cc.o.d"
  "CMakeFiles/radical_analysis.dir/registry.cc.o"
  "CMakeFiles/radical_analysis.dir/registry.cc.o.d"
  "CMakeFiles/radical_analysis.dir/rw_set.cc.o"
  "CMakeFiles/radical_analysis.dir/rw_set.cc.o.d"
  "CMakeFiles/radical_analysis.dir/slicer.cc.o"
  "CMakeFiles/radical_analysis.dir/slicer.cc.o.d"
  "libradical_analysis.a"
  "libradical_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
