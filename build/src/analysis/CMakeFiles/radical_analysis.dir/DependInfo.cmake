
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "src/analysis/CMakeFiles/radical_analysis.dir/analyzer.cc.o" "gcc" "src/analysis/CMakeFiles/radical_analysis.dir/analyzer.cc.o.d"
  "/root/repo/src/analysis/registry.cc" "src/analysis/CMakeFiles/radical_analysis.dir/registry.cc.o" "gcc" "src/analysis/CMakeFiles/radical_analysis.dir/registry.cc.o.d"
  "/root/repo/src/analysis/rw_set.cc" "src/analysis/CMakeFiles/radical_analysis.dir/rw_set.cc.o" "gcc" "src/analysis/CMakeFiles/radical_analysis.dir/rw_set.cc.o.d"
  "/root/repo/src/analysis/slicer.cc" "src/analysis/CMakeFiles/radical_analysis.dir/slicer.cc.o" "gcc" "src/analysis/CMakeFiles/radical_analysis.dir/slicer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/func/CMakeFiles/radical_func.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/radical_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radical_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radical_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
