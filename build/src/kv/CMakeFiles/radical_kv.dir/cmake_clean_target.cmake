file(REMOVE_RECURSE
  "libradical_kv.a"
)
