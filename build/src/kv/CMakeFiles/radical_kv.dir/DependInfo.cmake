
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/cache_store.cc" "src/kv/CMakeFiles/radical_kv.dir/cache_store.cc.o" "gcc" "src/kv/CMakeFiles/radical_kv.dir/cache_store.cc.o.d"
  "/root/repo/src/kv/intent_table.cc" "src/kv/CMakeFiles/radical_kv.dir/intent_table.cc.o" "gcc" "src/kv/CMakeFiles/radical_kv.dir/intent_table.cc.o.d"
  "/root/repo/src/kv/quorum_store.cc" "src/kv/CMakeFiles/radical_kv.dir/quorum_store.cc.o" "gcc" "src/kv/CMakeFiles/radical_kv.dir/quorum_store.cc.o.d"
  "/root/repo/src/kv/versioned_store.cc" "src/kv/CMakeFiles/radical_kv.dir/versioned_store.cc.o" "gcc" "src/kv/CMakeFiles/radical_kv.dir/versioned_store.cc.o.d"
  "/root/repo/src/kv/write_buffer.cc" "src/kv/CMakeFiles/radical_kv.dir/write_buffer.cc.o" "gcc" "src/kv/CMakeFiles/radical_kv.dir/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radical_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radical_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
