# Empty dependencies file for radical_kv.
# This may be replaced when dependencies are built.
