file(REMOVE_RECURSE
  "CMakeFiles/radical_kv.dir/cache_store.cc.o"
  "CMakeFiles/radical_kv.dir/cache_store.cc.o.d"
  "CMakeFiles/radical_kv.dir/intent_table.cc.o"
  "CMakeFiles/radical_kv.dir/intent_table.cc.o.d"
  "CMakeFiles/radical_kv.dir/quorum_store.cc.o"
  "CMakeFiles/radical_kv.dir/quorum_store.cc.o.d"
  "CMakeFiles/radical_kv.dir/versioned_store.cc.o"
  "CMakeFiles/radical_kv.dir/versioned_store.cc.o.d"
  "CMakeFiles/radical_kv.dir/write_buffer.cc.o"
  "CMakeFiles/radical_kv.dir/write_buffer.cc.o.d"
  "libradical_kv.a"
  "libradical_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
