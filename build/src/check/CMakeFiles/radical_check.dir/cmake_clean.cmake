file(REMOVE_RECURSE
  "CMakeFiles/radical_check.dir/history.cc.o"
  "CMakeFiles/radical_check.dir/history.cc.o.d"
  "CMakeFiles/radical_check.dir/linearizability.cc.o"
  "CMakeFiles/radical_check.dir/linearizability.cc.o.d"
  "libradical_check.a"
  "libradical_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
