file(REMOVE_RECURSE
  "libradical_check.a"
)
