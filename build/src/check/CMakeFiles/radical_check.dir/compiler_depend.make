# Empty compiler generated dependencies file for radical_check.
# This may be replaced when dependencies are built.
