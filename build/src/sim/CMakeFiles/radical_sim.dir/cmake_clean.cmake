file(REMOVE_RECURSE
  "CMakeFiles/radical_sim.dir/event_queue.cc.o"
  "CMakeFiles/radical_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/radical_sim.dir/network.cc.o"
  "CMakeFiles/radical_sim.dir/network.cc.o.d"
  "CMakeFiles/radical_sim.dir/region.cc.o"
  "CMakeFiles/radical_sim.dir/region.cc.o.d"
  "CMakeFiles/radical_sim.dir/simulator.cc.o"
  "CMakeFiles/radical_sim.dir/simulator.cc.o.d"
  "libradical_sim.a"
  "libradical_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
