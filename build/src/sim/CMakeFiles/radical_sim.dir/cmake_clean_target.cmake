file(REMOVE_RECURSE
  "libradical_sim.a"
)
