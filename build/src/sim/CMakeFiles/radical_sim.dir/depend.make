# Empty dependencies file for radical_sim.
# This may be replaced when dependencies are built.
