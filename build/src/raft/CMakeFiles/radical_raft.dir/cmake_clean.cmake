file(REMOVE_RECURSE
  "CMakeFiles/radical_raft.dir/cluster.cc.o"
  "CMakeFiles/radical_raft.dir/cluster.cc.o.d"
  "CMakeFiles/radical_raft.dir/lock_state_machine.cc.o"
  "CMakeFiles/radical_raft.dir/lock_state_machine.cc.o.d"
  "CMakeFiles/radical_raft.dir/log.cc.o"
  "CMakeFiles/radical_raft.dir/log.cc.o.d"
  "CMakeFiles/radical_raft.dir/node.cc.o"
  "CMakeFiles/radical_raft.dir/node.cc.o.d"
  "CMakeFiles/radical_raft.dir/transport.cc.o"
  "CMakeFiles/radical_raft.dir/transport.cc.o.d"
  "libradical_raft.a"
  "libradical_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
