
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raft/cluster.cc" "src/raft/CMakeFiles/radical_raft.dir/cluster.cc.o" "gcc" "src/raft/CMakeFiles/radical_raft.dir/cluster.cc.o.d"
  "/root/repo/src/raft/lock_state_machine.cc" "src/raft/CMakeFiles/radical_raft.dir/lock_state_machine.cc.o" "gcc" "src/raft/CMakeFiles/radical_raft.dir/lock_state_machine.cc.o.d"
  "/root/repo/src/raft/log.cc" "src/raft/CMakeFiles/radical_raft.dir/log.cc.o" "gcc" "src/raft/CMakeFiles/radical_raft.dir/log.cc.o.d"
  "/root/repo/src/raft/node.cc" "src/raft/CMakeFiles/radical_raft.dir/node.cc.o" "gcc" "src/raft/CMakeFiles/radical_raft.dir/node.cc.o.d"
  "/root/repo/src/raft/transport.cc" "src/raft/CMakeFiles/radical_raft.dir/transport.cc.o" "gcc" "src/raft/CMakeFiles/radical_raft.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radical_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radical_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/radical_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/radical_func.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/radical_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
