file(REMOVE_RECURSE
  "libradical_raft.a"
)
