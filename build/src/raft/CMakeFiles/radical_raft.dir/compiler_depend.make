# Empty compiler generated dependencies file for radical_raft.
# This may be replaced when dependencies are built.
