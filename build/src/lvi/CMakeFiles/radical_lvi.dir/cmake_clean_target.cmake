file(REMOVE_RECURSE
  "libradical_lvi.a"
)
