file(REMOVE_RECURSE
  "CMakeFiles/radical_lvi.dir/codec.cc.o"
  "CMakeFiles/radical_lvi.dir/codec.cc.o.d"
  "CMakeFiles/radical_lvi.dir/lock_service.cc.o"
  "CMakeFiles/radical_lvi.dir/lock_service.cc.o.d"
  "CMakeFiles/radical_lvi.dir/lock_table.cc.o"
  "CMakeFiles/radical_lvi.dir/lock_table.cc.o.d"
  "CMakeFiles/radical_lvi.dir/lvi_server.cc.o"
  "CMakeFiles/radical_lvi.dir/lvi_server.cc.o.d"
  "libradical_lvi.a"
  "libradical_lvi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_lvi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
