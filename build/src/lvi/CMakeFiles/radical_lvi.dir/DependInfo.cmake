
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lvi/codec.cc" "src/lvi/CMakeFiles/radical_lvi.dir/codec.cc.o" "gcc" "src/lvi/CMakeFiles/radical_lvi.dir/codec.cc.o.d"
  "/root/repo/src/lvi/lock_service.cc" "src/lvi/CMakeFiles/radical_lvi.dir/lock_service.cc.o" "gcc" "src/lvi/CMakeFiles/radical_lvi.dir/lock_service.cc.o.d"
  "/root/repo/src/lvi/lock_table.cc" "src/lvi/CMakeFiles/radical_lvi.dir/lock_table.cc.o" "gcc" "src/lvi/CMakeFiles/radical_lvi.dir/lock_table.cc.o.d"
  "/root/repo/src/lvi/lvi_server.cc" "src/lvi/CMakeFiles/radical_lvi.dir/lvi_server.cc.o" "gcc" "src/lvi/CMakeFiles/radical_lvi.dir/lvi_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/radical_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/radical_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/radical_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radical_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/radical_func.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radical_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
