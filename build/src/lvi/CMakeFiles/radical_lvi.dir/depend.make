# Empty dependencies file for radical_lvi.
# This may be replaced when dependencies are built.
