file(REMOVE_RECURSE
  "libradical_func.a"
)
