# Empty dependencies file for radical_func.
# This may be replaced when dependencies are built.
