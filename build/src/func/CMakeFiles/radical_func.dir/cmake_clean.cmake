file(REMOVE_RECURSE
  "CMakeFiles/radical_func.dir/builder.cc.o"
  "CMakeFiles/radical_func.dir/builder.cc.o.d"
  "CMakeFiles/radical_func.dir/expr.cc.o"
  "CMakeFiles/radical_func.dir/expr.cc.o.d"
  "CMakeFiles/radical_func.dir/external.cc.o"
  "CMakeFiles/radical_func.dir/external.cc.o.d"
  "CMakeFiles/radical_func.dir/function.cc.o"
  "CMakeFiles/radical_func.dir/function.cc.o.d"
  "CMakeFiles/radical_func.dir/interpreter.cc.o"
  "CMakeFiles/radical_func.dir/interpreter.cc.o.d"
  "libradical_func.a"
  "libradical_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radical_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
